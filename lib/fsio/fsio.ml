(* The pluggable storage layer under every durable store.

   All four persistence layers — the translation cache, the profile
   store, checkpoints and the flight recorder — used to speak to the
   filesystem directly and assume it never lies.  This module gives
   them one seam instead: a record of IO operations ({!t}) with two
   implementations.  {!real} talks to the actual filesystem and maps
   the storage errnos that have a recovery story (ENOSPC, EIO, EROFS)
   into the typed {!Fault} the stores degrade on; {!faulty} wraps any
   backend with a seeded injector that manufactures those same faults
   on demand — plus the two a correct filesystem never admits to: a
   short write or torn rename that *reports success*, and a crash
   point that abandons the process mid-operation.

   The commit discipline lives here too.  {!commit} is the one way an
   entry reaches its final name:

     write temp (chunked) -> fsync temp -> rename -> fsync dir

   so a reader can only ever observe no entry or a whole entry, and a
   power cut costs at most an orphaned [*.tmp] (swept at open / fsck).
   The lying-filesystem classes are exactly the ones the stores'
   magic/version/checksum parse ladders exist for; the crash-point
   enumerator in the tests walks every durable step of a commit and
   asserts each store recovers to a valid prefix.

   Faults are *storage* conditions, not bugs, so the exception carries
   a class the caller can type its degradation on: the tcache falls
   back to an in-memory overlay, profile/flight buffer in memory,
   checkpoints surface a Storage strike.  {!Crash} is different — it
   models the process dying, so no store may catch it; only the
   crash-point simulator does. *)

type error_class =
  | Enospc       (** no space left on device *)
  | Eio          (** input/output error *)
  | Readonly     (** read-only filesystem *)

let class_string = function
  | Enospc -> "enospc"
  | Eio -> "eio"
  | Readonly -> "readonly"

(** A typed storage fault: [op] is the IO operation ("write", "rename",
    …), [path] the file it was aimed at.  Stores catch this and
    degrade; it must never escape to a guest run. *)
exception Fault of { op : string; path : string; cls : error_class }

let fault_message = function
  | Fault { op; path; cls } ->
    Printf.sprintf "%s: %s: %s" op (Filename.basename path)
      (class_string cls)
  | _ -> invalid_arg "Fsio.fault_message"

(** The crash-point simulator fired at durable step [n]: the simulated
    process is dead mid-operation.  Deliberately NOT a {!Fault} — no
    store is allowed to absorb it; only the recovery harness catches
    it, then reopens the store and asserts a valid prefix survived. *)
exception Crash of int

type t = {
  label : string;
  read_file : string -> string;
      (** whole file; raises [Sys_error] or {!Fault}.  A file shrinking
          or torn mid-read returns the prefix — the parse ladders
          reject it as corrupt. *)
  write_file : string -> string -> unit;
      (** create/truncate, write everything, fsync the file *)
  rename : string -> string -> unit;
  remove : string -> unit;
  readdir : string -> string array;
  mkdir : string -> unit;  (** one level, 0o755 *)
  fsync_dir : string -> unit;
      (** make a completed rename durable; best-effort on filesystems
          that refuse directory fsync *)
  utimes : string -> unit;  (** touch mtime to now (LRU clock) *)
}

(* ------------------------------------------------------------------ *)
(* The real backend                                                    *)

(* The storage errnos every deployment eventually meets become typed
   faults so production degrades exactly like the injected runs the
   tests rehearse; anything else stays a [Sys_error] (a bug or a
   misconfiguration, not a storage condition). *)
let classify op path = function
  | Unix.ENOSPC -> Fault { op; path; cls = Enospc }
  | Unix.EIO -> Fault { op; path; cls = Eio }
  | Unix.EROFS -> Fault { op; path; cls = Readonly }
  | e -> Sys_error (path ^ ": " ^ Unix.error_message e)

let chunk = 4096

let real =
  let read_file path =
    try In_channel.with_open_bin path In_channel.input_all
    with Unix.Unix_error (e, _, _) -> raise (classify "read" path e)
  in
  let write_file path contents =
    match
      Unix.openfile path
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
        0o644
    with
    | exception Unix.Unix_error (e, _, _) ->
      raise (classify "write" path e)
    | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          try
            let len = String.length contents in
            let pos = ref 0 in
            while !pos < len do
              let n =
                Unix.write_substring fd contents !pos (min chunk (len - !pos))
              in
              pos := !pos + n
            done;
            Unix.fsync fd
          with Unix.Unix_error (e, _, _) -> raise (classify "write" path e))
  in
  let rename src dst =
    try Unix.rename src dst
    with Unix.Unix_error (e, _, _) -> raise (classify "rename" dst e)
  in
  let remove path =
    try Unix.unlink path
    with Unix.Unix_error (e, _, _) -> raise (classify "remove" path e)
  in
  let readdir path = Sys.readdir path in
  let mkdir path =
    try Unix.mkdir path 0o755
    with Unix.Unix_error (e, _, _) -> raise (classify "mkdir" path e)
  in
  let fsync_dir path =
    (* making the rename itself durable; a filesystem that refuses
       directory fsync gets rename-at-mount-sync semantics, which is
       the pre-fsio status quo — never an error *)
    match Unix.openfile path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let utimes path =
    try Unix.utimes path 0. 0.
    with Unix.Unix_error (e, _, _) -> raise (classify "utimes" path e)
  in
  { label = "real"; read_file; write_file; rename; remove; readdir; mkdir;
    fsync_dir; utimes }

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)

let rec mkdir_p io dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p io (Filename.dirname dir);
    try io.mkdir dir
    with Sys_error _ when Sys.is_directory dir -> ()
  end

let commit_seq = Atomic.make 0

(** A unique temp name inside [dir].  Always suffixed [".tmp"], so the
    stores' orphan sweeps and fsck recognise a dead writer's leavings
    regardless of which store wrote them. *)
let temp_name dir =
  Filename.concat dir
    (Printf.sprintf ".commit-%d-%d.tmp" (Unix.getpid ())
       (Atomic.fetch_and_add commit_seq 1))

(** Atomically install [contents] as [dir/file]: temp write + file
    fsync + rename + directory fsync.  On failure the temp file is
    removed and the fault re-raised — the destination is never torn by
    this path (only a lying backend can tear it).  {!Crash} skips the
    cleanup: the simulated process died, so its orphan stays exactly
    where a real kill would leave it. *)
let commit io ~dir ~file contents =
  let tmp = temp_name dir in
  (try
     io.write_file tmp contents;
     io.rename tmp (Filename.concat dir file)
   with
   | Crash _ as e -> raise e
   | e ->
     (try io.remove tmp with Fault _ | Sys_error _ -> ());
     raise e);
  io.fsync_dir dir

(* ------------------------------------------------------------------ *)
(* The fault backend                                                   *)

type fault_config = {
  seed : int;
  enospc_rate : float;       (** per write: prefix lands, then ENOSPC *)
  eio_read_rate : float;     (** per whole-file read *)
  eio_write_rate : float;    (** per write/rename/remove *)
  short_write_rate : float;
      (** per write: only a prefix reaches the disk but the write
          *reports success* — the class the checksum ladder exists for *)
  torn_rename_rate : float;
      (** per rename: the destination appears with truncated contents
          and the source is gone, reported as success *)
  readonly : bool;           (** every mutation faults [Readonly] *)
  crash_at : int option;
      (** die at durable step N (chunk writes, fsyncs, renames,
          removes each count one); [None] counts steps without dying *)
}

(** All rates zero, no crash: wraps a backend transparently while
    still counting durable steps — the dry-run half of the
    crash-point enumerator. *)
let fault_quiet =
  { seed = 0xF510; enospc_rate = 0.; eio_read_rate = 0.;
    eio_write_rate = 0.; short_write_rate = 0.; torn_rename_rate = 0.;
    readonly = false; crash_at = None }

(** The storage acceptance cocktail: every lying-filesystem class at a
    nonzero rate.  Under it a fleet must finish with zero crashes,
    zero mismatches and zero leaked pins — storage faults may cost
    retranslations and degraded durability, never wrong answers. *)
(* reads dominate a coalesced fleet's disk traffic (every session
   probes each page once, the gate winner alone writes), so the read
   rate carries the cocktail: it keeps the expected fault count well
   clear of zero on the fleet sizes the acceptance runs use. *)
let storage_cocktail =
  { fault_quiet with enospc_rate = 0.05; eio_read_rate = 0.05;
    eio_write_rate = 0.02; short_write_rate = 0.03;
    torn_rename_rate = 0.05 }

type injector = {
  f_cfg : fault_config;
  f_rng : Random.State.t;
  mutable steps : int;        (** durable steps performed so far *)
  mutable crashed : bool;     (** the crash point fired; io is dead *)
  mutable last_rename : (string * string) option;
      (** (src, dst) of the newest completed rename — undone when the
          crash lands on the directory fsync that would have made it
          durable *)
  mutable n_enospc : int;
  mutable n_eio_read : int;
  mutable n_eio_write : int;
  mutable n_short : int;
  mutable n_torn : int;
  mutable n_readonly : int;
}

let steps inj = inj.steps

let faults_fired inj =
  inj.n_enospc + inj.n_eio_read + inj.n_eio_write + inj.n_short + inj.n_torn
  + inj.n_readonly

let fault_report inj =
  Printf.sprintf
    "storage faults: enospc=%d eio_read=%d eio_write=%d short=%d torn=%d \
     readonly=%d (durable steps %d)"
    inj.n_enospc inj.n_eio_read inj.n_eio_write inj.n_short inj.n_torn
    inj.n_readonly inj.steps

(* Zero-rate classes draw nothing, so adding a class later cannot
   shift the streams of seeds recorded before it existed (the same
   discipline as Fault.Inject). *)
let chance inj p = p > 0. && Random.State.float inj.f_rng 1. < p

(** Wrap [base] (default {!real}) in the configured injector.  Reads,
    writes, renames and removes are subject to the fault classes;
    [readdir]/[mkdir]/[fsync_dir] stay honest apart from readonly and
    crash accounting — corrupting the namespace itself has no recovery
    story to test. *)
let faulty ?(base = real) cfg =
  let inj =
    { f_cfg = cfg; f_rng = Random.State.make [| cfg.seed; 0x46534941 |];
      steps = 0; crashed = false; last_rename = None;
      n_enospc = 0; n_eio_read = 0; n_eio_write = 0; n_short = 0;
      n_torn = 0; n_readonly = 0 }
  in
  (* One durable step: a write chunk, a file fsync, a rename, a remove
     or a directory fsync.  Returns [true] when this step is the crash
     point — the caller tears its in-flight state, then [die]s. *)
  let step () =
    if inj.crashed then raise (Crash inj.steps);
    let here = inj.steps in
    inj.steps <- inj.steps + 1;
    match cfg.crash_at with
    | Some n when n = here -> true
    | _ -> false
  in
  let die () =
    inj.crashed <- true;
    raise (Crash (inj.steps - 1))
  in
  let guard_mutation op path =
    if cfg.readonly then begin
      inj.n_readonly <- inj.n_readonly + 1;
      raise (Fault { op; path; cls = Readonly })
    end
  in
  let read_file path =
    if inj.crashed then raise (Crash inj.steps);
    if chance inj cfg.eio_read_rate then begin
      inj.n_eio_read <- inj.n_eio_read + 1;
      raise (Fault { op = "read"; path; cls = Eio })
    end;
    base.read_file path
  in
  let write_file path contents =
    guard_mutation "write" path;
    let len = String.length contents in
    let nchunks = max 1 ((len + chunk - 1) / chunk) in
    (* enumerate the chunk writes: a crash mid-write leaves the prefix
       flushed so far plus half of the chunk in flight *)
    let crashed_at = ref None in
    (try
       for i = 0 to nchunks - 1 do
         if step () then begin
           crashed_at := Some i;
           raise Exit
         end
       done
     with Exit -> ());
    (match !crashed_at with
    | Some i ->
      let keep = min len ((i * chunk) + (chunk / 2)) in
      base.write_file path (String.sub contents 0 keep);
      die ()
    | None -> ());
    if chance inj cfg.eio_write_rate then begin
      inj.n_eio_write <- inj.n_eio_write + 1;
      raise (Fault { op = "write"; path; cls = Eio })
    end;
    if chance inj cfg.enospc_rate then begin
      (* the disk filled mid-write: a prefix landed, then ENOSPC *)
      let keep = Random.State.int inj.f_rng (max 1 len) in
      base.write_file path (String.sub contents 0 keep);
      inj.n_enospc <- inj.n_enospc + 1;
      raise (Fault { op = "write"; path; cls = Enospc })
    end;
    if chance inj cfg.short_write_rate && len > 1 then begin
      (* a lying write: a strict prefix lands, success is reported *)
      let keep = 1 + Random.State.int inj.f_rng (len - 1) in
      base.write_file path (String.sub contents 0 keep);
      inj.n_short <- inj.n_short + 1
    end
    else begin
      base.write_file path contents;
      (* the file fsync is its own durable step: a crash here loses
         the unsynced tail of the last chunk *)
      if step () then begin
        let keep = max 0 (len - (chunk / 2)) in
        base.write_file path (String.sub contents 0 keep);
        die ()
      end
    end
  in
  let rename src dst =
    guard_mutation "rename" dst;
    if step () then die ();  (* crash before the rename: orphan temp *)
    if chance inj cfg.eio_write_rate then begin
      inj.n_eio_write <- inj.n_eio_write + 1;
      raise (Fault { op = "rename"; path = dst; cls = Eio })
    end;
    if chance inj cfg.torn_rename_rate then begin
      (* the destination materialises truncated, the source is gone,
         and the operation reports success — only the entry's checksum
         ladder can notice *)
      let contents = try base.read_file src with Sys_error _ | Fault _ -> "" in
      let keep =
        if String.length contents > 1 then
          1 + Random.State.int inj.f_rng (String.length contents - 1)
        else String.length contents
      in
      base.write_file dst (String.sub contents 0 keep);
      (try base.remove src with Sys_error _ | Fault _ -> ());
      inj.n_torn <- inj.n_torn + 1
    end
    else begin
      base.rename src dst;
      inj.last_rename <- Some (src, dst)
    end
  in
  let remove path =
    guard_mutation "remove" path;
    if step () then die ();
    if chance inj cfg.eio_write_rate then begin
      inj.n_eio_write <- inj.n_eio_write + 1;
      raise (Fault { op = "remove"; path; cls = Eio })
    end;
    base.remove path
  in
  let readdir path =
    if inj.crashed then raise (Crash inj.steps);
    base.readdir path
  in
  let mkdir path =
    guard_mutation "mkdir" path;
    base.mkdir path
  in
  let fsync_dir path =
    (* a crash on the directory fsync means the rename never became
       durable: undo it, leaving the completed temp as the orphan a
       real power cut would *)
    if step () then begin
      (match inj.last_rename with
      | Some (src, dst) ->
        (try base.rename dst src with Sys_error _ | Fault _ -> ())
      | None -> ());
      die ()
    end;
    base.fsync_dir path
  in
  let utimes path =
    if inj.crashed then raise (Crash inj.steps);
    if cfg.readonly then begin
      inj.n_readonly <- inj.n_readonly + 1;
      raise (Fault { op = "utimes"; path; cls = Readonly })
    end;
    base.utimes path
  in
  ( { label = Printf.sprintf "faulty(seed=%d)" cfg.seed; read_file;
      write_file; rename; remove; readdir; mkdir; fsync_dir; utimes },
    inj )
