(* Seeded, scriptable fault injection against the VMM.

   Every injector class attaches through one of the {!Vmm.Monitor}
   fault hooks; the VMM itself contains no injection logic, only the
   degradation ladder that must absorb whatever is thrown at it:

   - translator faults: the translate hook raises {!Injected} mid
     translation, simulating a crash or timeout in the dynamic
     compiler.  The ladder must quarantine the page and fall back to
     interpretation.
   - bit-flips: after a page is translated (or loaded from the
     persistent cache), a node of one of its tree VLIWs is corrupted
     in a way that is *guaranteed detectable* — either the node kind
     becomes an open tip (reaching it raises {!Vliw.Exec.Error}) or a
     branch test gets an out-of-range condition-register bit (the
     datapath raises [Invalid_argument], which {!Vliw.Exec} converts
     to [Error] before any write commits).  Detection happens either
     eagerly (the page-integrity check notices the digest changed) or
     lazily at runtime; a coin decides, so both ladder paths are
     exercised.
   - tcache poisoning: a random byte of the just-persisted cache entry
     is flipped on disk, exercising the codec's corruption handling on
     the next warm start.
   - external interrupts: delivered at VLIW-tree boundaries whenever
     the rate fires and MSR[EE] is set.
   - page-fault storms: bursts of forced faults at VLIW entry, each
     one a full rollback-to-precise-state + interpretation episode.

   All randomness flows from one [Random.State] seeded by the config,
   so a run is exactly reproducible from its seed. *)

module Monitor = Vmm.Monitor
module Translate = Translator.Translate
module Vec = Translator.Vec
module T = Vliw.Tree

type config = {
  seed : int;
  translator_fault_rate : float;  (** per translation-group request *)
  bitflip_rate : float;           (** per page install *)
  tcache_poison_rate : float;     (** per persisted entry *)
  interrupt_rate : float;         (** per VLIW-tree boundary with EE set *)
  storm_rate : float;             (** chance a storm starts, per VLIW *)
  storm_length : int;             (** forced faults per storm *)
  silent_rate : float;
      (** per page install: *undetectable* corruption — a branch test's
          sense is inverted, so the translation commits down the wrong
          path with plausible state and no digest or datapath trip.
          Only shadow verification (lib/guard) can catch this class;
          it is deliberately not part of {!cocktail}, which asserts
          that every injected fault is caught without a shadow. *)
  selfmod_rate : float;
      (** per VLIW entry: a *same-value* byte store into code — a
          promoted tier-2 member page when one exists, else the page
          executing now.  Semantically a no-op (the byte does not
          change), but the store-into-code machinery cannot know that,
          so it must invalidate the tier-1 page or deopt the tier-2
          region exactly as a real self-modifying store would.  Kept
          out of {!cocktail}: zero-rate classes draw nothing from the
          RNG, so adding a draw would shift every seeded reproducer
          stream recorded before this class existed. *)
}

(** All rates zero: attaching this config is a no-op. *)
let quiet =
  { seed = 0xDA15; translator_fault_rate = 0.; bitflip_rate = 0.;
    tcache_poison_rate = 0.; interrupt_rate = 0.; storm_rate = 0.;
    storm_length = 16; silent_rate = 0.; selfmod_rate = 0. }

(** Every injector class at a nonzero rate — the acceptance cocktail. *)
let cocktail =
  { quiet with translator_fault_rate = 0.05; bitflip_rate = 0.05;
    tcache_poison_rate = 0.25; interrupt_rate = 0.01; storm_rate = 0.002 }

(** Raised by the translate hook to simulate a translator crash. *)
exception Injected of string

type t = {
  cfg : config;
  rng : Random.State.t;
  mutable storm_left : int;
  digests : (int, string) Hashtbl.t;  (** page base -> clean tree digest *)
  corrupted : (int, [ `Eager | `Runtime ]) Hashtbl.t;
      (** bit-flipped pages not yet re-translated, and how the flip is
          meant to be caught: [`Eager] by the page-integrity digest
          check at the next page entry, [`Runtime] by the datapath
          raising {!Vliw.Exec.Error} mid-execution *)
  (* how many of each class actually fired, for tests and reports *)
  mutable n_translator : int;
  mutable n_bitflips : int;
  mutable n_poisoned : int;
  mutable n_interrupts : int;
  mutable n_storms : int;
  mutable n_silent : int;
  mutable n_selfmod : int;
}

let create cfg =
  { cfg; rng = Random.State.make [| cfg.seed; 0x4641554C |]; storm_left = 0;
    digests = Hashtbl.create 16; corrupted = Hashtbl.create 8;
    n_translator = 0; n_bitflips = 0; n_poisoned = 0; n_interrupts = 0;
    n_storms = 0; n_silent = 0; n_selfmod = 0 }

let chance t p = p > 0. && Random.State.float t.rng 1. < p

(* ------------------------------------------------------------------ *)
(* Bit-flips in decoded tree-VLIW pages                                *)

let nodes_of (v : T.t) =
  let acc = ref [] in
  let rec go (n : T.node) =
    acc := n :: !acc;
    match n.kind with
    | T.Branch { taken; fall; _ } -> go taken; go fall
    | T.Exit _ | T.Open -> ()
  in
  go v.root;
  !acc

let digest_of (page : Translate.xpage) =
  Digest.string (Tcache.Codec.encode_xpage page)

(* Corrupt a node in place.  Both mutations are detectable by
   construction: an [Open] kind raises [Exec.Error "open tip reached at
   runtime"] if selected, and condition bit 97 is outside the 16
   architected-plus-renamed CR fields, so evaluating the test raises
   [Invalid_argument] — which [Exec.run] turns into [Error] before any
   write of the VLIW is applied.  Undetectable silent corruption (e.g.
   swapping an add for a subtract) is out of scope: no integrity
   mechanism in the design claims to catch it without a digest. *)
let corrupt_node t (n : T.node) =
  match n.kind with
  | T.Branch { test; taken; fall } when Random.State.bool t.rng ->
    n.kind <- T.Branch { test = { test with bit = 97 }; taken; fall }
  | _ -> n.kind <- T.Open

(* A coin picks how this flip is to be caught.  [`Eager]: corrupt one
   random node anywhere (the digest changes whether or not the node is
   reachable) and let the page-integrity check catch it at the next
   page entry.  [`Runtime]: corrupt the root node of every valid-entry
   VLIW, so whichever entry point execution next comes through trips
   the datapath immediately — exercising the rollback-to-interpreter
   path rather than the digest path. *)
let corrupt_tree t (page : Translate.xpage) =
  let nv = Vec.length page.vliws in
  if nv > 0 then begin
    let mode = if Random.State.bool t.rng then `Eager else `Runtime in
    (match mode with
    | `Eager ->
      let v = Vec.get page.vliws (Random.State.int t.rng nv) in
      let nodes = nodes_of v in
      corrupt_node t (List.nth nodes (Random.State.int t.rng (List.length nodes)))
    | `Runtime ->
      Hashtbl.iter
        (fun _off id ->
          if id >= 0 && id < nv then corrupt_node t (Vec.get page.vliws id).root)
        page.entries);
    t.n_bitflips <- t.n_bitflips + 1;
    Hashtbl.replace t.corrupted page.base mode
  end

(* Invert the sense of the first branch test in the page: the
   translation still executes cleanly, writes plausible values and
   passes every digest and datapath check — it just commits the wrong
   path.  This is the fault class nothing below shadow verification
   (lib/guard) can see.  Page 0 is exempt: the mini OS's vectors and
   halt path live there, and the point is to corrupt *workload* code,
   not the machinery that reports the exit code. *)
let corrupt_silently t (page : Translate.xpage) =
  if page.base >= 0x1000 then begin
    let nv = Vec.length page.vliws in
    let flipped = ref false in
    let i = ref 0 in
    while (not !flipped) && !i < nv do
      let root = (Vec.get page.vliws !i).T.root in
      (match root.kind with
      | T.Branch { test; taken; fall } ->
        root.kind <-
          T.Branch { test = { test with sense = not test.sense }; taken; fall };
        flipped := true
      | T.Exit _ | T.Open -> ());
      incr i
    done;
    if !flipped then begin
      t.n_silent <- t.n_silent + 1;
      (* re-record the digest over the corrupted tree so even the eager
         integrity check agrees with it: the flip must be invisible to
         everything except a shadow replay *)
      Hashtbl.replace t.digests page.base (digest_of page)
    end
  end

(* ------------------------------------------------------------------ *)
(* Persistent-cache poisoning                                          *)

let poison_file t path =
  match In_channel.with_open_bin path In_channel.input_all with
  | "" -> ()
  | s ->
    let b = Bytes.of_string s in
    let i = Random.State.int t.rng (Bytes.length b) in
    let bit = 1 lsl Random.State.int t.rng 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit));
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b);
    t.n_poisoned <- t.n_poisoned + 1
  | exception Sys_error _ -> ()

(* ------------------------------------------------------------------ *)

(** Wire the configured injector classes into [vmm]'s fault hooks.
    Classes with a zero rate leave their hook untouched. *)
let attach t (vmm : Monitor.t) =
  let cfg = t.cfg in
  if cfg.translator_fault_rate > 0. then
    vmm.translate_hook <-
      Some
        (fun ~page:_ ~entry:_ ->
          if chance t cfg.translator_fault_rate then begin
            t.n_translator <- t.n_translator + 1;
            raise (Injected "translator crashed")
          end);
  if cfg.bitflip_rate > 0. || cfg.silent_rate > 0. then begin
    vmm.install_hook <-
      Some
        (fun page ->
          Hashtbl.replace t.digests page.base (digest_of page);
          Hashtbl.remove t.corrupted page.base;
          if chance t cfg.bitflip_rate then corrupt_tree t page;
          if chance t cfg.silent_rate then corrupt_silently t page);
    (* the integrity check re-digests [`Eager] pages and catches the
       flip before execution; [`Runtime] pages are left for the
       datapath to trip over *)
    vmm.page_check <-
      Some
        (fun page ->
          match Hashtbl.find_opt t.corrupted page.base with
          | Some `Eager ->
            Hashtbl.remove t.corrupted page.base;
            (match Hashtbl.find_opt t.digests page.base with
            | Some d when digest_of page <> d -> Some "tree digest mismatch"
            | _ -> None)
          | Some `Runtime | None -> None)
  end;
  if cfg.tcache_poison_rate > 0. then
    vmm.tcache_persist_hook <-
      Some (fun path -> if chance t cfg.tcache_poison_rate then poison_file t path);
  if cfg.interrupt_rate > 0. then
    vmm.boundary_hook <-
      Some
        (fun () ->
          if chance t cfg.interrupt_rate then begin
            t.n_interrupts <- t.n_interrupts + 1;
            true
          end
          else false);
  (* The prefault hook is shared: storms force a fault, self-modifying
     stores write and decline to.  Storm draws come first so a
     storm-only config's RNG stream is unchanged from before the
     selfmod class existed ([chance] skips the draw at rate zero). *)
  let storm () =
    if t.storm_left > 0 then begin
      t.storm_left <- t.storm_left - 1;
      true
    end
    else if chance t cfg.storm_rate then begin
      t.n_storms <- t.n_storms + 1;
      t.storm_left <- max 0 (cfg.storm_length - 1);
      true
    end
    else false
  in
  (* Store a byte of code back over itself: bit-identical memory, but
     the watch machinery must treat it as self-modification — deopting
     a promoted region when the byte lands in a member page, else
     invalidating the executing tier-1 page.  Target preference:
     the first live region's first member, so runs that promote
     exercise the deopt path deterministically. *)
  let selfmod () =
    if chance t cfg.selfmod_rate then begin
      let target =
        match
          Hashtbl.fold (fun b _ acc ->
              match acc with Some b' when b' <= b -> acc | _ -> Some b)
            vmm.regions None
        with
        | Some b -> Some b
        | None -> if vmm.current_page >= 0 then Some vmm.current_page else None
      in
      match target with
      | Some base when base >= 0 && base < Ppc.Mem.size vmm.mem ->
        Ppc.Mem.store8 vmm.mem base (Ppc.Mem.load8 vmm.mem base);
        t.n_selfmod <- t.n_selfmod + 1
      | _ -> ()
    end;
    false
  in
  if cfg.storm_rate > 0. || cfg.selfmod_rate > 0. then
    vmm.prefault_hook <-
      Some (fun () -> let forced = storm () in ignore (selfmod ()); forced)

(** One line per class: how often each injector actually fired. *)
let report t =
  Printf.sprintf
    "injected: translator=%d bitflips=%d poisoned=%d interrupts=%d storms=%d \
     silent=%d selfmod=%d"
    t.n_translator t.n_bitflips t.n_poisoned t.n_interrupts t.n_storms
    t.n_silent t.n_selfmod

let total t =
  t.n_translator + t.n_bitflips + t.n_poisoned + t.n_interrupts + t.n_storms
  + t.n_silent + t.n_selfmod
