(* Differential fuzzing of the 100%-compatibility claim.

   Pages of random (but structured) base-architecture code are run
   through the reference interpreter and the full VMM — optionally with
   fault injection — and the final architected state, memory image and
   console output are compared bit-for-bit by {!Vmm.Run.run}.  Any
   divergence is shrunk to a minimal reproducer (greedy nop-out) and
   written to disk with enough header information to replay it exactly.

   The generator is seeded: page [i] of [--seed s] is always the same
   program, its initial register values and its input data included, so
   a failure report is reproducible from two integers.

   Generated pages are biased toward termination — forward-only
   conditional branches, counted loops that exit when entered sideways,
   loads and stores confined to the data and scratch windows — but a
   small budget of completely random raw words keeps the decoder, the
   translator's illegal-instruction paths and the mini OS's interrupt
   vectors honest.  Raw words are withheld when external interrupts are
   being injected: a random [mfspr] could copy SRR0/SRR1 — which a
   transparent interrupt legitimately clobbers — into compared state. *)

open Ppc
module Wl = Workloads.Wl

(* Each slot assembles to exactly one 32-bit word, so branch
   displacements are computable at generation time as 4 * (slot
   distance) and survive shrinking (slots are replaced by nops, never
   removed). *)
type slot =
  | Op of Insn.t
  | Raw of int  (** an arbitrary word, decoded like any other memory *)

(** The true PowerPC no-op. *)
let nop = Insn.Ori (0, 0, 0)

type verdict =
  | Match            (** ran to completion, every comparison passed *)
  | Hang             (** both sides exhausted fuel: no verification point *)
  | Mismatch of string

type outcome = {
  index : int;
  verdict : verdict;
  reproducer : string option;  (** path of the shrunk reproducer, if any *)
}

(* ------------------------------------------------------------------ *)
(* Page generation                                                     *)

(* Register conventions inside a generated page:
   r0        syscall selector only
   r1        scratch window base   r2   data window base
   r3..r10   play registers (randomly initialised, freely clobbered)
   r11       loop counters (always left at 0) *)

let word32 rng =
  (Random.State.int rng 0x10000 lsl 16) lor Random.State.int rng 0x10000

let gen_slots rng ~insns ~allow_raw =
  let n = insns in
  let slots = Array.make n (Op nop) in
  let i = ref 0 in
  let emit s = slots.(!i) <- s; incr i in
  let play () = 3 + Random.State.int rng 8 in
  let simm () = Random.State.int rng 0x10000 - 0x8000 in
  let uimm () = Random.State.int rng 0x10000 in
  let base () = 1 + Random.State.int rng 2 in
  let alu_imm () =
    match Random.State.int rng 6 with
    | 0 -> Insn.Addi (play (), play (), simm ())
    | 1 -> Insn.Addis (play (), play (), simm ())
    | 2 -> Insn.Ori (play (), play (), uimm ())
    | 3 -> Insn.Xori (play (), play (), uimm ())
    | 4 -> Insn.Andi (play (), play (), uimm ())
    | _ -> Insn.Mulli (play (), play (), Random.State.int rng 256 - 128)
  in
  while !i < n do
    let remaining = n - !i in
    let r = Random.State.int rng 100 in
    if r < 26 then emit (Op (alu_imm ()))
    else if r < 46 then begin
      (* register-register ALU; rc bits exercise the CR datapath *)
      let rc = Random.State.bool rng in
      match Random.State.int rng 8 with
      | 0 ->
        let op =
          match Random.State.int rng 6 with
          | 0 -> Insn.Add | 1 -> Insn.Subf | 2 -> Insn.Mullw
          | 3 -> Insn.Divw | 4 -> Insn.Divwu | _ -> Insn.Neg
        in
        emit (Op (Insn.Xo (op, play (), play (), play (), rc)))
      | 1 | 2 ->
        let op =
          match Random.State.int rng 6 with
          | 0 -> Insn.And_ | 1 -> Insn.Or_ | 2 -> Insn.Xor_
          | 3 -> Insn.Slw | 4 -> Insn.Srw | _ -> Insn.Sraw
        in
        emit (Op (Insn.X (op, play (), play (), play (), rc)))
      | 3 ->
        let op =
          match Random.State.int rng 3 with
          | 0 -> Insn.Cntlzw | 1 -> Insn.Extsb | _ -> Insn.Extsh
        in
        emit (Op (Insn.X1 (op, play (), play (), rc)))
      | 4 -> emit (Op (Insn.Srawi (play (), play (), Random.State.int rng 32, rc)))
      | _ ->
        emit
          (Op
             (Insn.Rlwinm
                ( play (), play (), Random.State.int rng 32,
                  Random.State.int rng 32, Random.State.int rng 32, rc )))
    end
    else if r < 54 then
      (* compares feed the conditional branches; CR fields 0 and 1 only,
         so generated [Bc] bits stay within what compares actually set *)
      (match Random.State.int rng 4 with
      | 0 -> emit (Op (Insn.Cmpi (Random.State.int rng 2, play (), simm ())))
      | 1 -> emit (Op (Insn.Cmpli (Random.State.int rng 2, play (), uimm ())))
      | 2 -> emit (Op (Insn.Cmp (Random.State.int rng 2, play (), play ())))
      | _ -> emit (Op (Insn.Cmpl (Random.State.int rng 2, play (), play ()))))
    else if r < 58 then begin
      let op =
        match Random.State.int rng 4 with
        | 0 -> Insn.Cror | 1 -> Insn.Crxor | 2 -> Insn.Crand | _ -> Insn.Crnor
      in
      emit
        (Op
           (Insn.Crop
              ( op, Random.State.int rng 8, Random.State.int rng 8,
                Random.State.int rng 8 )))
    end
    else if r < 68 then
      (* loads confined to the scratch/data windows *)
      (match Random.State.int rng 3 with
      | 0 ->
        emit
          (Op (Insn.Load (Word, false, play (), base (), 4 * Random.State.int rng 64)))
      | 1 ->
        emit
          (Op
             (Insn.Load
                ( Half, Random.State.bool rng, play (), base (),
                  2 * Random.State.int rng 128 )))
      | _ ->
        emit (Op (Insn.Load (Byte, false, play (), base (), Random.State.int rng 256))))
    else if r < 78 then
      (match Random.State.int rng 3 with
      | 0 ->
        emit (Op (Insn.Store (Word, play (), base (), 4 * Random.State.int rng 64)))
      | 1 ->
        emit (Op (Insn.Store (Half, play (), base (), 2 * Random.State.int rng 128)))
      | _ -> emit (Op (Insn.Store (Byte, play (), base (), Random.State.int rng 256))))
    else if r < 86 then begin
      (* forward-only branches: the target is a later slot, so straight
         runs terminate; the epilogue starts at slot [n] *)
      let d = 1 + Random.State.int rng (min remaining 12) in
      if Random.State.int rng 3 = 0 then emit (Op (Insn.B (4 * d, false, false)))
      else begin
        let bo = if Random.State.bool rng then Insn.Bo.if_true else Insn.Bo.if_false in
        emit (Op (Insn.Bc (bo, Random.State.int rng 8, 4 * d, false, false)))
      end
    end
    else if r < 90 && remaining >= 8 then begin
      (* a counted loop that is safe to enter sideways: it spins while
         r11 > 0 (signed), so a stray forward branch into the body — with
         r11 left at 0 by the previous loop — exits after one pass *)
      let body = 1 + Random.State.int rng 4 in
      let iters = 1 + Random.State.int rng 8 in
      emit (Op (Insn.Addi (11, 0, iters)));
      for _ = 1 to body do emit (Op (alu_imm ())) done;
      emit (Op (Insn.Addi (11, 11, -1)));
      emit (Op (Insn.Cmpi (1, 11, 0)));
      emit
        (Op
           (Insn.Bc
              ( Insn.Bo.if_true, Insn.Crbit.of_field 1 Insn.Crbit.gt,
                -4 * (body + 2), false, false )))
    end
    else if r < 93 && remaining >= 2 then begin
      (* console output through the mini OS *)
      emit (Op (Insn.Addi (0, 0, 1)));
      emit (Op Insn.Sc)
    end
    else if r < 96 && allow_raw then emit (Raw (word32 rng))
    else emit (Op nop)
  done;
  slots

(* ------------------------------------------------------------------ *)
(* Page -> workload                                                    *)

(** Wrap a slot array as a {!Wl.t}.  The prologue (register and base
    initialisation) and the data-window contents are derived from
    [(seed, index)], so a page is fully described by those two integers
    plus its slots. *)
let wl_of ~seed ~index ~fuel slots =
  let build a =
    let rng = Random.State.make [| seed; index; 1 |] in
    Asm.label a "main";
    Asm.li32 a 1 Wl.scratch_base;
    Asm.li32 a 2 Wl.data_base;
    for r = 3 to 10 do
      Asm.li32 a r (word32 rng)
    done;
    Asm.li a 11 0;
    Array.iter
      (function Op i -> Asm.ins a i | Raw w -> Asm.word a w)
      slots;
    (* epilogue: fold every play register and a sample of both memory
       windows into the exit code, so divergence anywhere surfaces even
       through the single compared word *)
    Asm.xor a 3 3 4;
    Asm.add a 3 3 5;
    Asm.xor a 3 3 6;
    Asm.add a 3 3 7;
    Asm.xor a 3 3 8;
    Asm.add a 3 3 9;
    Asm.xor a 3 3 10;
    Asm.lwz a 4 2 0;
    Asm.xor a 3 3 4;
    Asm.lwz a 4 1 0;
    Asm.add a 3 3 4;
    Wl.sys_exit a
  in
  let init mem _labels =
    let rng = Random.State.make [| seed; index; 2 |] in
    for k = 0 to 255 do
      Mem.store32 mem (Wl.data_base + (4 * k)) (word32 rng)
    done
  in
  { Wl.name = Printf.sprintf "fuzz-%d-%d" seed index;
    description = "generated by daisy fuzz";
    build; init; mem_size = Wl.default_mem_size; fuel }

(* ------------------------------------------------------------------ *)
(* Differential run                                                    *)

(** Run one page through reference interpreter and VMM — once per
    execution engine, so the tree walker and the staged closure engine
    are both held to the reference semantics on every page; [faults],
    when given, attaches every configured injector class (with a
    per-page derived seed, so page verdicts are independent of each
    other).  Each engine run gets its own freshly-seeded injector:
    injectors are stateful RNGs, and sharing one would entangle the two
    runs' fault schedules.  [storage] additionally runs the page
    against a persistent translation cache in the given directory,
    through a seeded disk-fault backend — the verdict must still be
    [Match]: a lying disk may cost retranslation, never correctness.
    [storage_fired] accumulates how many disk faults actually fired.
    [attach_extra] attaches additional instrumentation after the
    injector (the guard's shadow verifier, observability sinks). *)
let run_slots ?faults ?storage ?storage_fired ?attach_extra ~seed ~index ~fuel
    slots =
  let w = wl_of ~seed ~index ~fuel slots in
  let run_engine (engine : Vmm.Monitor.engine) =
    let label =
      match engine with Vmm.Monitor.Tree -> "tree" | Compiled -> "compiled"
    in
    let ignore_mem, inject =
      match faults with
      | None -> ([], None)
      | Some (cfg : Inject.config) ->
        let inj =
          Inject.create { cfg with seed = cfg.seed lxor (index * 2654435761) }
        in
        ( (if cfg.interrupt_rate > 0. then [ Wl.interrupt_count_addr ] else []),
          Some (Inject.attach inj) )
    in
    (* like the fault injector: a fresh per-engine backend, seeded from
       the page index, so the two engine runs' fault schedules stay
       independent and any page replays exactly *)
    let tcache_dir, tcache_io, storage_inj =
      match storage with
      | None -> (None, None, None)
      | Some (dir, (fc : Fsio.fault_config)) ->
        let io, inj =
          Fsio.faulty { fc with seed = fc.seed lxor (index * 2654435761) }
        in
        (Some dir, Some io, Some inj)
    in
    let instrument =
      match (inject, attach_extra) with
      | None, None -> None
      | _ ->
        Some
          (fun vmm ->
            (match inject with Some f -> f vmm | None -> ());
            match attach_extra with Some f -> f vmm | None -> ())
    in
    let v =
      match Vmm.Run.run ~engine ?instrument ~ignore_mem ?tcache_dir ?tcache_io w with
      | r -> if r.exit_code = None then Hang else Match
      | exception Vmm.Run.Mismatch m -> Mismatch (label ^ ": " ^ m)
      | exception e ->
        Mismatch (label ^ ": crash: " ^ Printexc.to_string e)
    in
    (match (storage_fired, storage_inj) with
    | Some acc, Some inj -> acc := !acc + Fsio.faults_fired inj
    | _ -> ());
    v
  in
  match run_engine Vmm.Monitor.Tree with
  | Mismatch _ as v -> v
  | tree_v -> (
    match run_engine Vmm.Monitor.Compiled with
    | Mismatch _ as v -> v
    | compiled_v ->
      (* either engine hanging means no verification point for the page *)
      if tree_v = Hang || compiled_v = Hang then Hang else Match)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)

(** Greedy nop-out to a fixed point: repeatedly blank any slot whose
    removal keeps [still] true.  Slots are replaced, never removed, so
    every branch displacement in the survivors is still meaningful. *)
let shrink ~still slots =
  let slots = Array.copy slots in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i s ->
        if s <> Op nop then begin
          slots.(i) <- Op nop;
          if still slots then changed := true else slots.(i) <- s
        end)
      slots
  done;
  slots

(* ------------------------------------------------------------------ *)
(* Reproducers on disk                                                 *)

let slot_word = function Op i -> Encode.encode i | Raw w -> w land 0xFFFF_FFFF

let write_reproducer ~dir ~seed ~index ~fuel ~message slots =
  Tcache.Store.mkdir_p dir;
  let path = Filename.concat dir (Printf.sprintf "repro-%d-%d.txt" seed index) in
  let oc = open_out path in
  Printf.fprintf oc "# daisy fuzz reproducer: %s\n" message;
  Printf.fprintf oc "# seed %d index %d fuel %d\n" seed index fuel;
  Array.iter
    (fun s ->
      let w = slot_word s in
      match Decode.decode w with
      | Some i -> Printf.fprintf oc "0x%08X  # %s\n" w (Insn.to_string i)
      | None -> Printf.fprintf oc "0x%08X  # <illegal>\n" w)
    slots;
  close_out oc;
  path

exception Bad_reproducer of string

(** Parse a reproducer back into [(seed, index, fuel, slots)].  The
    slots come back as raw words — assembling a word or the instruction
    it decodes to writes the same bytes, so the replayed image is
    bit-identical to the original. *)
let read_reproducer path =
  let ic = open_in path in
  let header = ref None in
  let slots = ref [] in
  (try
     while true do
       let line = input_line ic in
       (try Scanf.sscanf line "# seed %d index %d fuel %d"
              (fun s i f -> header := Some (s, i, f))
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> ());
       try Scanf.sscanf line "0x%x" (fun w -> slots := Raw w :: !slots)
       with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
     done
   with End_of_file -> close_in ic);
  match !header with
  | None -> raise (Bad_reproducer (path ^ ": missing '# seed I index I fuel I' line"))
  | Some (seed, index, fuel) -> (seed, index, fuel, Array.of_list (List.rev !slots))

(** Re-run a reproducer file; returns its verdict. *)
let replay ?faults ?storage ?attach_extra path =
  let seed, index, fuel, slots = read_reproducer path in
  run_slots ?faults ?storage ?attach_extra ~seed ~index ~fuel slots

(* ------------------------------------------------------------------ *)
(* The corpus driver                                                   *)

type summary = {
  pages : int;
  matched : int;
  hung : int;
  mismatched : int;
  storage_injected : int;  (** disk faults fired by the [storage] backend *)
  outcomes : outcome list;  (** in page order *)
}

(** [fuzz ~seed ~pages ()] generates and differentially runs [pages]
    pages.  [faults] adds injection; [storage] = [(dir, cfg)] runs
    every page against a persistent cache in [dir] through a seeded
    disk-fault backend (`--fault-storage`), holding the compatibility
    claim under lying storage too.  [out_dir], when given, enables
    shrinking and writes one reproducer file per mismatch.  [log] gets
    one line per notable event.  [on_mismatch] fires once per
    mismatching page, before shrinking, while whatever [attach_extra]
    instrumented (e.g. a flight recorder) still holds the failing run's
    tail — the driver uses it to write crash dumps. *)
let fuzz ?faults ?storage ?attach_extra ?on_mismatch ?out_dir ?(insns = 96)
    ?(fuel = 100_000) ?(log = fun (_ : string) -> ()) ~seed ~pages () =
  let allow_raw =
    match faults with
    | Some (f : Inject.config) -> f.interrupt_rate <= 0.
    | None -> true
  in
  let matched = ref 0 and hung = ref 0 and mismatched = ref 0 in
  let storage_fired = ref 0 in
  let outcomes = ref [] in
  for index = 0 to pages - 1 do
    let rng = Random.State.make [| seed; index; 0 |] in
    let slots = gen_slots rng ~insns ~allow_raw in
    let reproducer = ref None in
    let verdict =
      run_slots ?faults ?storage ~storage_fired ?attach_extra ~seed ~index
        ~fuel slots
    in
    (match verdict with
    | Match -> incr matched
    | Hang ->
      incr hung;
      log (Printf.sprintf "page %d: hang (both sides out of fuel)" index)
    | Mismatch m ->
      incr mismatched;
      log (Printf.sprintf "page %d: MISMATCH: %s" index m);
      (match on_mismatch with
      | Some f -> f ~index ~message:m
      | None -> ());
      (match out_dir with
      | None -> ()
      | Some dir ->
        let still s =
          match
            run_slots ?faults ?storage ?attach_extra ~seed ~index ~fuel s
          with
          | Mismatch _ -> true
          | Match | Hang -> false
        in
        let small = shrink ~still slots in
        let kept =
          Array.fold_left
            (fun n s -> if s <> Op nop then n + 1 else n)
            0 small
        in
        let path =
          write_reproducer ~dir ~seed ~index ~fuel ~message:m small
        in
        log
          (Printf.sprintf "page %d: shrunk to %d live slots -> %s" index kept
             path);
        reproducer := Some path));
    outcomes := { index; verdict; reproducer = !reproducer } :: !outcomes
  done;
  { pages; matched = !matched; hung = !hung; mismatched = !mismatched;
    storage_injected = !storage_fired; outcomes = List.rev !outcomes }
