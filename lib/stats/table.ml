(* Plain-text table rendering for the experiment reports. *)

(** [render ~title ~header rows] prints an aligned table: first column
    left-aligned, the rest right-aligned, like the paper's tables.
    Ragged rows are tolerated — missing cells render empty, extra cells
    are dropped — so a partially-filled report never aborts a run. *)
let render ?title ~header rows =
  let ncols = List.length header in
  let cell row c =
    match List.nth_opt row c with Some s -> s | None -> ""
  in
  let width c =
    List.fold_left
      (fun acc row -> max acc (String.length (cell row c)))
      (String.length (cell header c))
      rows
  in
  let widths = List.init ncols width in
  let pad c s =
    let w = List.nth widths c in
    if c = 0 then Printf.sprintf "%-*s" w s else Printf.sprintf "%*s" w s
  in
  let line row =
    String.concat "  " (List.init ncols (fun c -> pad c (cell row c)))
  in
  (match title with
  | Some t ->
    print_newline ();
    print_endline t;
    print_endline (String.make (String.length t) '-')
  | None -> ());
  print_endline (line header);
  print_endline
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> print_endline (line row)) rows

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let pct v = Printf.sprintf "%.2f%%" (100.0 *. v)
let i v = string_of_int v

(** Thousands-separated integer, for big dynamic counts. *)
let big v =
  let s = string_of_int v in
  let n = String.length s in
  let b = Buffer.create (n + (n / 3)) in
  String.iteri
    (fun idx c ->
      if idx > 0 && (n - idx) mod 3 = 0 then Buffer.add_char b ',';
      Buffer.add_char b c)
    s;
  Buffer.contents b

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs))
