(* Persistent translation cache: cold start vs warm start.

   Runs the same workload twice against one cache directory.  The cold
   run translates every page it touches and persists each translation;
   the warm run finds them all by content address and installs the
   decoded trees without invoking the translator once.  Both runs are
   verified instruction-for-instruction against the reference
   interpreter by [Vmm.Run.run], so "the warm run is correct" is not an
   assertion here — it is a precondition of the harness returning.

     dune exec examples/tcache_demo.exe *)

let fresh_dir () =
  let f = Filename.temp_file "daisy_tcache" "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

let () =
  let w = Workloads.Registry.by_name "wc" in
  let tcache_dir = fresh_dir () in
  let failures = ref 0 in
  let check what ok =
    if not ok then begin
      incr failures;
      Printf.printf "FAIL: %s\n" what
    end
  in

  let cold = Vmm.Run.run ~tcache_dir w in
  let warm = Vmm.Run.run ~tcache_dir w in

  let line label (r : Vmm.Run.result) =
    Printf.printf
      "%-5s exit=%-6s pages_translated=%-3d insns_translated=%-6d \
       interp_insns=%-6d tcache: %d hits / %d misses / %d persists\n"
      label
      (match r.exit_code with Some c -> string_of_int c | None -> "fuel")
      r.pages_translated r.insns_translated r.interp_insns
      r.stats.tcache_hits r.stats.tcache_misses r.stats.tcache_persists
  in
  Printf.printf "workload %s, cache at %s\n\n" w.name tcache_dir;
  line "cold" cold;
  line "warm" warm;
  Printf.printf
    "\ndelta: pages_translated %d -> %d, insns_translated %d -> %d\n"
    cold.pages_translated warm.pages_translated cold.insns_translated
    warm.insns_translated;

  (* the warm start did no translation work at all... *)
  check "warm run translated 0 pages" (warm.pages_translated = 0);
  check "warm run scheduled 0 instructions" (warm.insns_translated = 0);
  check "warm run hit the cache" (warm.stats.tcache_hits > 0);
  check "cold run persisted entries" (cold.stats.tcache_persists > 0);

  (* ...and reached the identical architected final state.  Run.run
     already verified each run against the reference interpreter
     (registers, memory, console output); equal exits plus equal
     dynamic behaviour tie the two runs to each other as well. *)
  check "identical exit code" (cold.exit_code = warm.exit_code);
  check "identical VLIWs executed" (cold.vliws = warm.vliws);
  check "identical cycles" (cold.cycles_infinite = warm.cycles_infinite);
  check "identical ILP" (cold.ilp_inf = warm.ilp_inf);

  ignore (Tcache.Store.clear_dir tcache_dir);
  (try Sys.rmdir tcache_dir with Sys_error _ -> ());
  if !failures = 0 then print_string "\nall checks passed\n"
  else exit 1
