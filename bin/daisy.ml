(* The daisy command-line tool.

     daisy list                      — available workloads
     daisy run <workload> [...]     — run under DAISY, print statistics
     daisy profile <workload>       — per-page hotness profile
     daisy trees <workload>         — dump the entry page's tree VLIWs
     daisy experiments [ids]        — regenerate paper tables/figures
     daisy ladder <workload>        — the parallelism ladder (Ch. 6)
     daisy fuzz --seed S --pages N  — differential fuzzing vs. the
                                      reference interpreter
     daisy resume <dir>             — continue a checkpointed run
     daisy tcache <dir> ...         — inspect the persistent cache
     daisy serve <dir> [...]        — multi-tenant session daemon over a
                                      shared translation cache
     daisy client <command> [...]   — drive a running daemon

   Exit codes: 0 = ran and verified; 3 = differential verification
   failed (a compatibility bug); 4 = verified bit-exact, but only by
   degrading — the ladder quarantined pages or pinned them to
   interpretation after injected/real faults; 143 = stopped by SIGTERM
   at a commit boundary, leaving a resumable checkpoint behind. *)

open Cmdliner
module Params = Translator.Params
module Vec = Translator.Vec

let workload_conv =
  let parse s =
    match Workloads.Registry.by_name s with
    | w -> Ok w
    | exception Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf (w : Workloads.Wl.t) -> Format.pp_print_string ppf w.name)

let config_conv =
  let parse s =
    let found =
      Array.to_list Vliw.Config.figure_5_1
      |> List.find_opt (fun (c : Vliw.Config.t) -> c.name = s)
    in
    match found with
    | Some c -> Ok c
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown config %S (have: %s)" s
             (String.concat ", "
                (Array.to_list Vliw.Config.figure_5_1
                |> List.map (fun (c : Vliw.Config.t) -> c.name)))))
  in
  Arg.conv (parse, fun ppf (c : Vliw.Config.t) -> Format.pp_print_string ppf c.name)

let params_term =
  let config =
    Arg.(value & opt config_conv Vliw.Config.default
         & info [ "config" ] ~docv:"NAME" ~doc:"Machine configuration (e.g. 24-16-8-7).")
  in
  let page =
    Arg.(value & opt int 4096 & info [ "page-size" ] ~docv:"BYTES" ~doc:"Translation unit.")
  in
  let window =
    Arg.(value & opt int Params.default.window & info [ "window" ] ~doc:"Per-path window.")
  in
  let join =
    Arg.(value & opt int Params.default.join_limit
         & info [ "join-limit" ] ~doc:"Re-schedule budget per base instruction.")
  in
  let no_rename = Arg.(value & flag & info [ "no-rename" ] ~doc:"Disable out-of-order renaming.") in
  let no_spec = Arg.(value & flag & info [ "no-load-spec" ] ~doc:"Keep loads below stores.") in
  let no_fwd = Arg.(value & flag & info [ "no-forward" ] ~doc:"Disable store-to-load forwarding.") in
  let single = Arg.(value & flag & info [ "single-path" ] ~doc:"Schedule only the probable path.") in
  let adaptive =
    Arg.(value & flag
         & info [ "adaptive-alias" ]
             ~doc:"Retranslate pages without load speculation on alias storms.")
  in
  let make config page window join no_rename no_spec no_fwd single adaptive =
    { Params.default with
      config; page_size = page; window; join_limit = join;
      rename = not no_rename; load_spec = not no_spec;
      store_forward = not no_fwd; multipath = not single;
      adaptive_alias = adaptive }
  in
  Term.(const make $ config $ page $ window $ join $ no_rename $ no_spec
        $ no_fwd $ single $ adaptive)

(* Shared --fault-* flags: every injector class of lib/fault, off by
   default.  Returns [None] when every rate is zero (no hooks are
   attached at all). *)
let fault_term =
  let seed =
    Arg.(value & opt int 0xDA15
         & info [ "fault-seed" ] ~docv:"SEED"
             ~doc:"Seed for the fault-injection RNG streams.")
  in
  let rate name doc =
    Arg.(value & opt float 0. & info [ name ] ~docv:"RATE" ~doc)
  in
  let tr = rate "fault-translator" "Translator crash probability per translation request." in
  let bf = rate "fault-bitflip" "Probability of corrupting a tree-VLIW node per page install." in
  let po = rate "fault-tcache" "Probability of flipping a byte in each persisted tcache entry." in
  let ir = rate "fault-interrupts" "External-interrupt probability per VLIW-tree boundary." in
  let st = rate "fault-storms" "Probability a page-fault storm starts, per VLIW." in
  let si =
    rate "fault-silent"
      "Probability of *silently* corrupting a page per install (a branch \
       test's sense is inverted; only shadow verification can catch it)."
  in
  let sm =
    rate "fault-selfmod"
      "Probability per VLIW entry of a same-value byte store into code (a \
       promoted tier-2 member page when one exists) — semantically inert, \
       but it must deopt the region / invalidate the page."
  in
  let sl =
    Arg.(value & opt int 16
         & info [ "fault-storm-length" ] ~docv:"N"
             ~doc:"Forced faults per storm.")
  in
  let cocktail =
    Arg.(value & flag
         & info [ "fault-cocktail" ]
             ~doc:"Enable every injector class at its default rate.")
  in
  let make seed tr bf po ir st si sm sl cocktail =
    let d = if cocktail then Fault.Inject.cocktail else Fault.Inject.quiet in
    let pick v dflt = if v > 0. then v else dflt in
    let cfg =
      { Fault.Inject.seed;
        translator_fault_rate = pick tr d.translator_fault_rate;
        bitflip_rate = pick bf d.bitflip_rate;
        tcache_poison_rate = pick po d.tcache_poison_rate;
        interrupt_rate = pick ir d.interrupt_rate;
        storm_rate = pick st d.storm_rate;
        storm_length = sl;
        silent_rate = pick si d.silent_rate;
        selfmod_rate = pick sm d.selfmod_rate }
    in
    if
      cfg.translator_fault_rate > 0. || cfg.bitflip_rate > 0.
      || cfg.tcache_poison_rate > 0. || cfg.interrupt_rate > 0.
      || cfg.storm_rate > 0. || cfg.silent_rate > 0.
      || cfg.selfmod_rate > 0.
    then Some cfg
    else None
  in
  Term.(const make $ seed $ tr $ bf $ po $ ir $ st $ si $ sm $ sl $ cocktail)

(* Shared supervision flags (lib/guard): checkpointing, watchdog
   deadlines and sampled shadow verification. *)
type guard_opts = {
  g_checkpoint_dir : string option;
  g_every : int;
  g_console_out : string option;
  g_shadow_sample : float;
  g_shadow_seed : int;
  g_shadow_out : string option;
  g_wd_translate : float option;
  g_wd_compile : float option;
  g_wd_progress : int option;
}

let guard_term =
  let ck_dir =
    Arg.(value & opt (some string) None
         & info [ "checkpoint-dir" ] ~docv:"DIR"
             ~doc:"Write periodic resumable snapshots to $(docv); a killed \
                   run continues with $(b,daisy resume) $(docv).")
  in
  let every =
    Arg.(value & opt int 50_000
         & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:"Commit-boundary cycles (VLIWs + interpreted instructions, \
                   the VMM's proxy for base instructions) between snapshots.")
  in
  let console_out =
    Arg.(value & opt (some string) None
         & info [ "console-out" ] ~docv:"FILE"
             ~doc:"Write the guest console output to $(docv) (the \
                   crash-recovery invariant: bit-identical across kill and \
                   resume).")
  in
  let shadow_sample =
    Arg.(value & opt float 0.
         & info [ "shadow-sample" ] ~docv:"RATE"
             ~doc:"Re-execute this fraction of committed VLIW packets under \
                   the reference interpreter and compare architected effects \
                   (1.0 = every packet).")
  in
  let shadow_seed =
    Arg.(value & opt int 0
         & info [ "shadow-seed" ] ~docv:"SEED" ~doc:"Shadow sampler seed.")
  in
  let shadow_out =
    Arg.(value & opt (some string) None
         & info [ "shadow-out" ] ~docv:"DIR"
             ~doc:"Write a fuzz-format reproducer here on shadow divergence \
                   (replay with $(b,daisy fuzz --replay)).")
  in
  let wd_translate =
    Arg.(value & opt (some float) None
         & info [ "watchdog-translate" ] ~docv:"SECONDS"
             ~doc:"Wall-clock budget per page translation; an overrun takes \
                   a ladder strike and recovers by interpretation.")
  in
  let wd_compile =
    Arg.(value & opt (some float) None
         & info [ "watchdog-compile" ] ~docv:"SECONDS"
             ~doc:"Wall-clock budget per page staging in the compiled \
                   engine.")
  in
  let wd_progress =
    Arg.(value & opt (some int) None
         & info [ "watchdog-progress" ] ~docv:"N"
             ~doc:"Runaway-loop detector: quarantine a page after $(docv) \
                   consecutive committed boundaries at the same pc with no \
                   interpretation in between.")
  in
  let make g_checkpoint_dir g_every g_console_out g_shadow_sample g_shadow_seed
      g_shadow_out g_wd_translate g_wd_compile g_wd_progress =
    { g_checkpoint_dir; g_every; g_console_out; g_shadow_sample; g_shadow_seed;
      g_shadow_out; g_wd_translate; g_wd_compile; g_wd_progress }
  in
  Term.(const make $ ck_dir $ every $ console_out $ shadow_sample $ shadow_seed
        $ shadow_out $ wd_translate $ wd_compile $ wd_progress)

(* Shared --tier2-* flags: the tier-2 promotion driver (lib/obs Tier).
   Off by default; every threshold flag implies nothing on its own —
   only --tier2 attaches the driver. *)
type tier2_opts = {
  t2_enable : bool;
  t2_min_heat : int;
  t2_edge_threshold : int;
  t2_max_pages : int;
  t2_check_every : int;
  t2_max_deopts : int;
  t2_sync : bool;
}

let tier2_term =
  let enable =
    Arg.(value & flag
         & info [ "tier2" ]
             ~doc:"Promote hot pages and inter-page regions to the \
                   superblock scheduler at run time: wide-window \
                   re-translation across former page boundaries, atomic \
                   swap-in, deopt back to tier-1 on any assumption \
                   failure.")
  in
  let d = Obs.Tier.default in
  let min_heat =
    Arg.(value & opt int d.Obs.Tier.min_heat
         & info [ "tier2-min-heat" ] ~docv:"N"
             ~doc:"Execution weight (VLIWs + interpreted instructions) a \
                   page must accumulate before promotion.")
  in
  let edge_threshold =
    Arg.(value & opt int d.Obs.Tier.edge_threshold
         & info [ "tier2-edge-threshold" ] ~docv:"N"
             ~doc:"Traversal count an exit edge needs to participate in an \
                   inter-page region candidate.")
  in
  let max_pages =
    Arg.(value & opt int d.Obs.Tier.max_pages
         & info [ "tier2-max-pages" ] ~docv:"N"
             ~doc:"Largest member-page set compiled into one region image.")
  in
  let check_every =
    Arg.(value & opt int d.Obs.Tier.check_every
         & info [ "tier2-check-every" ] ~docv:"N"
             ~doc:"Committed boundaries between promotion-policy \
                   evaluations.")
  in
  let max_deopts =
    Arg.(value & opt int d.Obs.Tier.max_deopts
         & info [ "tier2-max-deopts" ] ~docv:"N"
             ~doc:"Deopt strikes before a region candidate is blacklisted \
                   for the rest of the run.")
  in
  let sync =
    Arg.(value & flag
         & info [ "tier2-sync" ]
             ~doc:"Compile promoted regions on the execution thread instead \
                   of a background domain (deterministic timing; used by \
                   tests).")
  in
  let make t2_enable t2_min_heat t2_edge_threshold t2_max_pages t2_check_every
      t2_max_deopts t2_sync =
    { t2_enable; t2_min_heat; t2_edge_threshold; t2_max_pages; t2_check_every;
      t2_max_deopts; t2_sync }
  in
  Term.(const make $ enable $ min_heat $ edge_threshold $ max_pages
        $ check_every $ max_deopts $ sync)

(* The driver config minus [submit], which depends on whether the caller
   has a background pool to offer. *)
let tier2_config (o : tier2_opts) ~submit =
  if not o.t2_enable then None
  else
    Some
      { Obs.Tier.min_heat = o.t2_min_heat;
        edge_threshold = o.t2_edge_threshold; max_pages = o.t2_max_pages;
        check_every = o.t2_check_every; max_deopts = o.t2_max_deopts;
        submit = (if o.t2_sync then None else submit) }

let with_out path f =
  match open_out path with
  | oc -> Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
  | exception Sys_error msg ->
    Printf.eprintf "daisy: %s\n" msg;
    exit 1

let write_json path j = with_out path (fun oc -> Obs.Json.to_channel oc j)

(* Fail fast on unwritable output paths: a long run must not discover
   only at the end that its results have nowhere to go.  Probed before
   the run starts; a clear message and usage-error exit, not a raw
   [Sys_error] backtrace. *)
let check_writable_file what path =
  match open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path with
  | oc -> close_out_noerr oc
  | exception Sys_error msg ->
    Printf.eprintf "daisy: %s path is not writable: %s\n" what msg;
    exit 2

let check_writable_dir what dir =
  match
    Tcache.Store.mkdir_p dir;
    let probe = Filename.temp_file ~temp_dir:dir ".probe" ".tmp" in
    Sys.remove probe
  with
  | () -> ()
  | exception Sys_error msg ->
    Printf.eprintf "daisy: %s directory %s is not writable: %s\n" what dir msg;
    exit 2

(* The profile store's key: the workload image (name, entry point, the
   exact memory bytes after [instantiate]) plus the page size, which is
   the one translation parameter that changes the *shape* of the edge
   graph rather than its weights.  Scheduling parameters deliberately do
   not participate — heat accumulates across window/config sweeps. *)
let image_fingerprint (w : Workloads.Wl.t) ~page_size =
  let mem, entry = Workloads.Wl.instantiate w in
  Printf.sprintf "%s:%s:0x%x:%d" w.name
    (Digest.to_hex (Digest.bytes mem.bytes))
    entry page_size

let profile_store (w : Workloads.Wl.t) ~dir ~page_size =
  Obs.Pstore.open_store ~dir ~frontend:"ppc"
    ~fingerprint:(image_fingerprint w ~page_size) ()

let trace_format_conv = Arg.enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]

let list_cmd =
  let doc = "List the available workloads." in
  let run () =
    List.iter
      (fun (w : Workloads.Wl.t) -> Printf.printf "%-10s %s\n" w.name w.description)
      Workloads.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run a workload under DAISY and print statistics." in
  let finite =
    Arg.(value & flag
         & info [ "finite" ] ~doc:"Attach the paper's 24-issue cache hierarchy.")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write a VMM event trace to $(docv).")
  in
  let trace_format =
    Arg.(value & opt trace_format_conv `Chrome
         & info [ "trace-format" ] ~docv:"FMT"
             ~doc:"Trace format: $(b,chrome) (Perfetto-loadable trace_event \
                   JSON) or $(b,jsonl) (one event object per line).")
  in
  let trace_cap =
    Arg.(value & opt int (1 lsl 20)
         & info [ "trace-cap" ] ~docv:"N"
             ~doc:"Ring-buffer capacity: keep the last $(docv) events.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write the metrics registry (counters, gauges, histograms) \
                   as JSON to $(docv).")
  in
  let tcache_dir =
    Arg.(value & opt (some string) None
         & info [ "tcache" ] ~docv:"DIR"
             ~doc:"Persist translations in the content-addressed cache at \
                   $(docv); pages whose exact bytes were translated before \
                   (under the same parameters) are installed from disk \
                   instead of being retranslated.")
  in
  let engine =
    Arg.(value
         & opt (enum [ ("tree", Vmm.Monitor.Tree); ("compiled", Vmm.Monitor.Compiled) ])
             Vmm.Monitor.Compiled
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"VLIW execution engine: $(b,compiled) (the default; pages \
                   staged into closures with direct-linked dispatch) or \
                   $(b,tree) (the interpretive tree walker).")
  in
  let profile_dir =
    Arg.(value & opt (some string) None
         & info [ "profile-dir" ] ~docv:"DIR"
             ~doc:"Accumulate this run's region profile into the persistent \
                   store at $(docv); repeated runs merge (counts sum), and \
                   $(b,daisy profile) reads the result.")
  in
  let crash_dump_dir =
    Arg.(value & opt string "daisy-crash"
         & info [ "crash-dump-dir" ] ~docv:"DIR"
             ~doc:"Where the flight recorder writes crash dumps on \
                   divergence, watchdog strike, quarantine, mismatch or \
                   SIGTERM (created only when a dump happens).")
  in
  let no_flight =
    Arg.(value & flag
         & info [ "no-flight" ]
             ~doc:"Disable the always-on flight recorder (no crash dumps).")
  in
  let flight_cap =
    Arg.(value & opt int Obs.Flight.default_capacity
         & info [ "flight-cap" ] ~docv:"N"
             ~doc:"Flight-recorder ring capacity: a crash dump's event tail \
                   keeps the last $(docv) events.")
  in
  let w = Arg.(required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD") in
  let run (w : Workloads.Wl.t) params engine finite trace_out trace_format
      trace_cap metrics_out tcache_dir profile_dir crash_dump_dir no_flight
      flight_cap faults guard tier2 =
    if trace_cap <= 0 then begin
      Printf.eprintf "daisy: --trace-cap must be positive\n";
      exit 2
    end;
    if flight_cap <= 0 then begin
      Printf.eprintf "daisy: --flight-cap must be positive\n";
      exit 2
    end;
    (* probe every output destination before burning cycles on the run *)
    Option.iter (check_writable_file "--trace-out") trace_out;
    Option.iter (check_writable_file "--metrics-out") metrics_out;
    Option.iter (check_writable_dir "--profile-dir") profile_dir;
    let hierarchy = if finite then Some (Memsys.Hierarchy.paper_24issue ()) else None in
    let tracer =
      Option.map (fun _ -> Obs.Trace.create ~capacity:trace_cap ()) trace_out
    in
    let metrics = Option.map (fun _ -> Obs.Metrics.create ()) metrics_out in
    let flight =
      if no_flight then None
      else Some (Obs.Flight.create ~capacity:flight_cap ~dir:crash_dump_dir ())
    in
    (* the region profile feeds both the persistent store and the crash
       dump's region graph, so it runs whenever either consumer does *)
    let profile =
      if profile_dir <> None || Option.is_some flight then
        Some (Obs.Profile.create ~page_size:params.Params.page_size ())
      else None
    in
    (* open (and sweep) the store up front: a stale temp file from a
       killed writer is cleaned before this run adds its own *)
    let pstore =
      Option.map
        (fun dir -> profile_store w ~dir ~page_size:params.Params.page_size)
        profile_dir
    in
    let bridge =
      match (tracer, metrics, profile, flight) with
      | None, None, None, None -> None
      | _ -> Some (Obs.Bridge.create ?tracer ?metrics ?profile ?flight ())
    in
    let inject = Option.map Fault.Inject.create faults in
    let watchdog =
      { Guard.Watchdog.translate_s = guard.g_wd_translate;
        compile_s = guard.g_wd_compile; progress = guard.g_wd_progress;
        session_s = None }
    in
    let shadow =
      if guard.g_shadow_sample > 0. then
        Some
          { Guard.Shadow.default with sample = guard.g_shadow_sample;
            seed = guard.g_shadow_seed; out_dir = guard.g_shadow_out }
      else None
    in
    let supervised =
      guard.g_checkpoint_dir <> None || shadow <> None
      || watchdog <> Guard.Watchdog.none
      (* a flight recorder rides the supervision stack too, for the
         SIGTERM-boundary dump *)
      || Option.is_some flight
    in
    if guard.g_checkpoint_dir <> None then Guard.Supervise.install_sigterm ();
    (* one background domain for tier-2 region compiles, so promotion
       never blocks the execution thread; --tier2-sync skips the pool.
       The pre-sized minor heap keeps the compile domain from paying
       the minor-GC latency inline compiles never saw. *)
    let tier2_pool =
      if tier2.t2_enable && not tier2.t2_sync then
        Some (Serve.Pool.create ~domains:1 ~minor_heap_words:(1 lsl 22) ())
      else None
    in
    let tier2_cfg =
      tier2_config tier2
        ~submit:
          (Option.map
             (fun pool job -> Serve.Pool.submit pool job)
             tier2_pool)
    in
    let instrument =
      match (bridge, inject, supervised, tier2_cfg) with
      | None, None, false, None -> None
      | _ ->
        Some
          (fun vmm ->
            (match bridge with Some b -> Obs.Bridge.attach b vmm | None -> ());
            (match inject with Some i -> Fault.Inject.attach i vmm | None -> ());
            if supervised then
              ignore
                (Guard.Supervise.attach ?checkpoint_dir:guard.g_checkpoint_dir
                   ~checkpoint_every:guard.g_every ~watchdog ?shadow ?flight
                   ~workload:w.name vmm);
            (* last: the tier driver chains whatever hooks the bridge and
               supervisor installed, so attachment order is load-bearing *)
            match tier2_cfg with
            | Some cfg -> ignore (Obs.Tier.attach ~cfg vmm)
            | None -> ())
    in
    (* a transparent injected interrupt leaves exactly one architected
       trace: the mini OS's interrupt counter word *)
    let ignore_mem =
      match faults with
      | Some (f : Fault.Inject.config) when f.interrupt_rate > 0. ->
        [ Workloads.Wl.interrupt_count_addr ]
      | _ -> []
    in
    let r =
      try Vmm.Run.run ~params ~engine ?hierarchy ?instrument ?tcache_dir ~ignore_mem w
      with
      | Vmm.Run.Mismatch msg ->
        (* differential verification against the reference interpreter
           failed: a correctness bug, never a measurement detail *)
        Printf.eprintf "daisy: verification failed: %s\n" msg;
        (match flight with
        | Some f ->
          (match Obs.Flight.dump f ~reason:"mismatch" with
          | Some path -> Printf.eprintf "daisy: crash dump: %s\n" path
          | None -> ())
        | None -> ());
        exit 3
      | Guard.Supervise.Terminated ->
        Printf.eprintf "daisy: SIGTERM at a commit boundary; checkpoint %s\n"
          (match guard.g_checkpoint_dir with Some d -> "written to " ^ d
                                           | None -> "skipped");
        exit 143
    in
    (match tier2_pool with
    | Some pool ->
      Serve.Pool.drain pool;
      Serve.Pool.shutdown pool
    | None -> ());
    (match guard.g_console_out with
    | Some path -> with_out path (fun oc -> output_string oc r.console)
    | None -> ());
    (match (trace_out, tracer) with
    | Some path, Some tr ->
      (match trace_format with
      | `Chrome -> write_json path (Obs.Trace.to_chrome tr)
      | `Jsonl -> with_out path (fun oc -> Obs.Trace.to_jsonl tr oc));
      if Obs.Trace.dropped tr > 0 then
        Printf.eprintf
          "warning: trace ring dropped %d early events (raise --trace-cap)\n"
          (Obs.Trace.dropped tr)
    | _ -> ());
    (match (metrics_out, metrics) with
    | Some path, Some m ->
      Obs.Bridge.record_result m r;
      write_json path (Obs.Metrics.to_json m)
    | _ -> ());
    Printf.printf "workload:             %s\n" r.Vmm.Run.name;
    Printf.printf "exit code:            %s\n"
      (match r.exit_code with Some c -> string_of_int c | None -> "(fuel)");
    Printf.printf "base instructions:    %d (static %d, reuse %d)\n" r.base_insns
      r.static_insns (r.base_insns / max 1 r.static_insns);
    Printf.printf "tree VLIWs executed:  %d (+%d interpreted instructions)\n"
      r.vliws r.interp_insns;
    Printf.printf "ILP (infinite cache): %.2f\n" r.ilp_inf;
    if finite then Printf.printf "ILP (finite cache):   %.2f (%d stall cycles)\n" r.ilp_fin r.stall_cycles;
    Printf.printf "loads/stores:         %d / %d\n" r.loads r.stores;
    Printf.printf "cross-page branches:  %d direct, %d via LR, %d via CTR\n"
      r.stats.cross_direct r.stats.cross_lr r.stats.cross_ctr;
    Printf.printf "alias recoveries:     %d (adaptive retranslations %d)\n"
      r.stats.aliases r.stats.adaptive_retranslations;
    Printf.printf "translation:          %d pages, %d entries, %d ins scheduled, %d VLIWs, %d code bytes\n"
      r.totals.pages r.totals.entry_points r.totals.insns r.totals.vliws_made
      r.code_bytes;
    (match tcache_dir with
    | None -> ()
    | Some _ ->
      let s = r.stats in
      Printf.printf
        "tcache:               %d hits, %d misses, %d persists, %d evicts, \
         %d corrupt, %d skipped\n"
        s.tcache_hits s.tcache_misses s.tcache_persists s.tcache_evicts
        s.tcache_corrupt s.tcache_skipped);
    (if tier2.t2_enable then
       let s = r.stats in
       Printf.printf
         "tier-2:               %d promotions (%.1f ms compile), %d deopts, \
          %d region entries, %d region VLIWs, %d off-region exits\n"
         s.tier2_promotions
         (s.tier2_compile_seconds *. 1000.)
         s.tier2_deopts s.tier2_entries s.tier2_vliws s.tier2_offregion_exits);
    (match inject with
    | None -> ()
    | Some i -> Printf.printf "%s\n" (Fault.Inject.report i));
    (let s = r.stats in
     if supervised || s.checkpoints_written > 0 then
       Printf.printf
         "guard:                %d checkpoints (%.1f ms), %d deadline hits, \
          %d shadow checks, %d divergences\n"
         s.checkpoints_written (s.checkpoint_seconds *. 1000.) s.deadline_hits
         s.shadow_checked s.shadow_divergences);
    (match profile with
    | Some p -> Obs.Profile.flush p ~vliws_total:r.vliws
    | None -> ());
    (match (pstore, profile) with
    | Some store, Some p ->
      let merged, bytes = Obs.Pstore.accumulate store p in
      Printf.printf
        "profile:              %d pages, %d edge traversals over %d run(s) \
         -> %s (%d bytes)\n"
        (Hashtbl.length merged.Obs.Profile.pages)
        (Obs.Profile.total_edges merged) merged.runs (Obs.Pstore.path store)
        bytes
    | _ -> ());
    (match flight with
    | Some f ->
      List.iter
        (fun (reason, path) ->
          Printf.printf "crash dump:           %s (%s)\n" path reason)
        (Obs.Flight.dumps f)
    | None -> ());
    let s = r.stats in
    if Vmm.Run.degraded s then begin
      Printf.printf
        "degraded:             %d translator faults, %d exec faults, \
         %d quarantines, %d retries, %d pages pinned to interpretation\n"
        s.translator_faults s.exec_faults s.quarantines s.degrade_retries
        s.interp_pinned;
      (* verified bit-exact, but only by falling down the ladder *)
      exit 4
    end
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ w $ params_term $ engine $ finite $ trace_out
          $ trace_format $ trace_cap $ metrics_out $ tcache_dir $ profile_dir
          $ crash_dump_dir $ no_flight $ flight_cap $ fault_term $ guard_term
          $ tier2_term)

let resume_cmd =
  let doc =
    "Resume a checkpointed run.  Restores the newest valid snapshot \
     sequence from DIR, continues execution from its precise commit \
     boundary, keeps checkpointing into the same directory, and performs \
     the same end-to-end differential verification as $(b,daisy run) — \
     console output and exit code are bit-identical to the uninterrupted \
     run.  Translation parameters must match the original run's \
     (pass the same flags); the snapshot's fingerprint is checked."
  in
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  let console_out =
    Arg.(value & opt (some string) None
         & info [ "console-out" ] ~docv:"FILE"
             ~doc:"Write the guest console output to $(docv).")
  in
  let run dir params console_out tier2 =
    match Guard.Checkpoint.load ~dir () with
    | None ->
      Printf.eprintf "daisy: no usable checkpoint in %s\n" dir;
      exit 1
    | Some loaded ->
      let snap = loaded.Guard.Checkpoint.last in
      let w =
        match Workloads.Registry.by_name snap.s_workload with
        | w -> w
        | exception Invalid_argument _ ->
          Printf.eprintf "daisy: checkpoint is for unknown workload %S\n"
            snap.s_workload;
          exit 1
      in
      if loaded.dropped > 0 then
        Printf.eprintf
          "warning: ignored %d trailing corrupt/unreadable snapshot file(s)\n"
          loaded.dropped;
      Guard.Supervise.install_sigterm ();
      let r =
        try
          Vmm.Run.run ~params ~engine:snap.s_engine
            ~prepare:(fun vmm ->
              (* restore first, then attach the supervisor: the
                 checkpointer's cadence baseline must be the restored
                 clock, not zero, or the first boundary would snapshot
                 again immediately *)
              let pc, consumed = Guard.Checkpoint.restore_into loaded vmm in
              ignore
                (Guard.Supervise.attach ~checkpoint_dir:dir
                   ~checkpoint_every:snap.s_every
                   ~checkpoint_seq:(snap.s_seq + 1) ~workload:w.name vmm);
              (* promotion is transparent, so a resumed run needs no
                 tier-2 state from the interrupted one; re-attaching
                 simply lets the continuation climb back to tier 2.
                 Compiles stay synchronous: resume is a recovery path,
                 determinism beats latency here. *)
              (match tier2_config tier2 ~submit:None with
              | Some cfg -> ignore (Obs.Tier.attach ~cfg vmm)
              | None -> ());
              Some (pc, max 1 ((w.fuel * 2) - consumed)))
            w
        with
        | Vmm.Run.Mismatch msg ->
          Printf.eprintf "daisy: verification failed: %s\n" msg;
          exit 3
        | Guard.Checkpoint.Incompatible msg ->
          Printf.eprintf "daisy: %s\n" msg;
          exit 1
        | Guard.Supervise.Terminated ->
          Printf.eprintf
            "daisy: SIGTERM at a commit boundary; checkpoint written to %s\n"
            dir;
          exit 143
      in
      (match console_out with
      | Some path -> with_out path (fun oc -> output_string oc r.console)
      | None -> ());
      Printf.printf "workload:             %s (resumed from %s, snapshot %d)\n"
        r.Vmm.Run.name dir (snap.s_seq);
      Printf.printf "exit code:            %s\n"
        (match r.exit_code with Some c -> string_of_int c | None -> "(fuel)");
      let s = r.stats in
      Printf.printf "tree VLIWs executed:  %d (+%d interpreted instructions)\n"
        s.vliws s.interp_insns;
      if tier2.t2_enable then
        Printf.printf
          "tier-2:               %d promotions (%.1f ms compile), %d deopts, \
           %d region entries, %d region VLIWs, %d off-region exits\n"
          s.tier2_promotions
          (s.tier2_compile_seconds *. 1000.)
          s.tier2_deopts s.tier2_entries s.tier2_vliws s.tier2_offregion_exits;
      Printf.printf
        "guard:                %d checkpoints (%.1f ms), %d deadline hits, \
         %d shadow checks, %d divergences\n"
        s.checkpoints_written (s.checkpoint_seconds *. 1000.) s.deadline_hits
        s.shadow_checked s.shadow_divergences;
      if Vmm.Run.degraded s then begin
        Printf.printf
          "degraded:             %d translator faults, %d exec faults, \
           %d quarantines, %d retries, %d pages pinned to interpretation\n"
          s.translator_faults s.exec_faults s.quarantines s.degrade_retries
          s.interp_pinned;
        exit 4
      end
  in
  Cmd.v (Cmd.info "resume" ~doc)
    Term.(const run $ dir $ params_term $ console_out $ tier2_term)

let profile_cmd =
  let doc =
    "Profile a workload under DAISY: per-page hotness, the weighted \
     cross-page edge graph, and the hot regions (inter-page cycles) that \
     are tier-2 promotion candidates.  With --profile-dir, reads the \
     accumulated persistent profile when one exists instead of running."
  in
  let finite =
    Arg.(value & flag
         & info [ "finite" ] ~doc:"Attach the paper's 24-issue cache hierarchy.")
  in
  let top =
    Arg.(value & opt int 20
         & info [ "top" ] ~docv:"N"
             ~doc:"Show the $(docv) hottest pages (and, with \
                   $(b,--regions), the $(docv) hottest regions).")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Also write the full profile (pages, edges, regions) as \
                   JSON to $(docv).")
  in
  let regions =
    Arg.(value & flag
         & info [ "regions" ]
             ~doc:"Report hot cross-page regions (cycles in the edge graph \
                   over the heat threshold) with their edge weights.")
  in
  let threshold =
    Arg.(value & opt int 2
         & info [ "threshold" ] ~docv:"N"
             ~doc:"Heat threshold: only edges traversed at least $(docv) \
                   times participate in region detection.")
  in
  let flame =
    Arg.(value & opt (some string) None
         & info [ "flame" ] ~docv:"FILE"
             ~doc:"Write a collapsed-stack (folded) flamegraph of page heat \
                   grouped by region to $(docv).")
  in
  let profile_dir =
    Arg.(value & opt (some string) None
         & info [ "profile-dir" ] ~docv:"DIR"
             ~doc:"Persistent profile store: report the accumulated entry \
                   for this workload if present, otherwise run once and \
                   accumulate the result.")
  in
  let report (w : Workloads.Wl.t) params finite top json_out regions_flag
      threshold flame profile_dir =
    if threshold <= 0 then begin
      Printf.eprintf "daisy: --threshold must be positive\n";
      exit 2
    end;
    Option.iter (check_writable_dir "--profile-dir") profile_dir;
    let page_size = params.Params.page_size in
    let store =
      Option.map (fun dir -> profile_store w ~dir ~page_size) profile_dir
    in
    let stored =
      match store with
      | None -> None
      | Some s -> (
        match Obs.Pstore.load s with
        | `Hit p -> Some p
        | `Miss -> None
        | `Corrupt msg | `Skipped msg ->
          Printf.eprintf
            "warning: stored profile unusable (%s); profiling afresh\n" msg;
          None)
    in
    let p, source =
      match stored with
      | Some p ->
        ( p,
          Printf.sprintf "%d accumulated run(s) from %s" p.Obs.Profile.runs
            (Option.get profile_dir) )
      | None ->
        let hierarchy =
          if finite then Some (Memsys.Hierarchy.paper_24issue ()) else None
        in
        let profile = Obs.Profile.create ~page_size () in
        let bridge = Obs.Bridge.create ~profile () in
        let r =
          Vmm.Run.run ~params ?hierarchy
            ~instrument:(fun vmm -> Obs.Bridge.attach bridge vmm) w
        in
        Obs.Profile.flush profile ~vliws_total:r.vliws;
        (match store with
        | Some s -> ignore (Obs.Pstore.accumulate s profile)
        | None -> ());
        ( profile,
          Printf.sprintf "fresh run (%d VLIWs, +%d interpreted)" r.vliws
            r.interp_insns )
    in
    (match json_out with
    | Some path -> write_json path (Obs.Profile.to_json ~threshold p)
    | None -> ());
    (match flame with
    | Some path ->
      with_out path (fun oc ->
          output_string oc (Obs.Profile.to_collapsed ~threshold p))
    | None -> ());
    Printf.printf "workload:            %s\n" w.name;
    Printf.printf "profile source:      %s\n" source;
    Printf.printf "page entries:        %d across %d pages\n"
      (Obs.Profile.total_entries p)
      (Hashtbl.length p.Obs.Profile.pages);
    Printf.printf "cross-page edges:    %d traversals over %d distinct edges\n"
      (Obs.Profile.total_edges p)
      (Hashtbl.length p.Obs.Profile.edges);
    let ranked = Obs.Profile.pages_ranked p in
    let shown = List.filteri (fun i _ -> i < top) ranked in
    Stats.Table.render
      ~title:(Printf.sprintf "Hottest pages (%d of %d)"
                (List.length shown) (List.length ranked))
      ~header:[ "page"; "entries"; "vliws"; "interp"; "xlates"; "insns";
                "bytes"; "vliws/insn" ]
      (List.map
         (fun (q : Obs.Profile.page) ->
           [ Printf.sprintf "0x%08x" q.base;
             Stats.Table.i q.entries;
             Stats.Table.big q.vliws;
             Stats.Table.i q.interp_insns;
             Stats.Table.i q.translations;
             Stats.Table.i q.insns_scheduled;
             Stats.Table.i q.code_bytes;
             Stats.Table.f1
               (float_of_int q.vliws
               /. float_of_int (max 1 q.insns_scheduled)) ])
         shown);
    if regions_flag then begin
      let rs = Obs.Profile.regions ~threshold p in
      if rs = [] then
        Printf.printf
          "\nNo cross-page regions at threshold %d: no page cycle's edges \
           were all traversed that often.\n"
          threshold
      else begin
        let shown = List.filteri (fun i _ -> i < top) rs in
        Printf.printf
          "\nHot regions (%d of %d; tier-2 promotion candidates; edges >= \
           %d traversals):\n"
          (List.length shown) (List.length rs) threshold;
        let cfg = Obs.Tier.default in
        List.iter
          (fun (r : Obs.Profile.region) ->
            let verdict =
              match Obs.Tier.verdict ~cfg r with
              | Ok heat -> Printf.sprintf "PROMOTE (heat %d)" heat
              | Error reason -> Printf.sprintf "skip: %s" reason
            in
            Printf.printf
              "  R%d: %d pages [%s]  %d internal traversals, %d cycles, \
               %d entries  -> %s\n"
              r.id (List.length r.rpages)
              (String.concat " "
                 (List.map (Printf.sprintf "0x%x") r.rpages))
              r.internal_weight r.region_vliws r.region_entries verdict;
            List.iter
              (fun (s, d, k, c) ->
                Printf.printf "      0x%x -> 0x%x  %-6s %d\n" s d
                  (Obs.Profile.edge_kind_string k)
                  c)
              r.redges)
          shown
      end
    end
  in
  let merge ~into srcs =
    (match into with
    | None ->
      Printf.eprintf "daisy: profile merge requires --into DIR\n";
      exit 2
    | Some _ -> ());
    let into = Option.get into in
    (match srcs with
    | [] ->
      Printf.eprintf "daisy: profile merge requires at least one SRC dir\n";
      exit 2
    | _ -> ());
    check_writable_dir "--into" into;
    let merged, skipped = Obs.Pstore.merge_dirs ~into srcs in
    Printf.printf "merged %d profile entrie(s) into %s (%d file(s) skipped)\n"
      merged into skipped
  in
  (* [daisy profile WORKLOAD ...] reports; [daisy profile merge --into DIR
     SRC...] combines stores from a fleet of runs.  The dispatch is on the
     first positional so the common report form needs no subcommand. *)
  let target =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"WORKLOAD|merge"
             ~doc:"A workload name to profile, or $(b,merge) to combine \
                   profile directories ($(b,--into) DIR SRC...).")
  in
  let rest = Arg.(value & pos_right 0 string [] & info [] ~docv:"SRC") in
  let into =
    Arg.(value & opt (some string) None
         & info [ "into" ] ~docv:"DIR"
             ~doc:"($(b,merge)) destination store; created if missing.")
  in
  let dispatch target rest into params finite top json_out regions_flag
      threshold flame profile_dir =
    if target = "merge" then merge ~into rest
    else
      match Workloads.Registry.by_name target with
      | w ->
        if rest <> [] then begin
          Printf.eprintf "daisy: unexpected arguments after %s\n" target;
          exit 2
        end;
        report w params finite top json_out regions_flag threshold flame
          profile_dir
      | exception Invalid_argument m ->
        Printf.eprintf "daisy: %s\n" m;
        exit 2
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const dispatch $ target $ rest $ into $ params_term $ finite $ top
          $ json_out $ regions $ threshold $ flame $ profile_dir)

let trees_cmd =
  let doc = "Translate a workload's entry page and print its tree VLIWs." in
  let w = Arg.(required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD") in
  let run (w : Workloads.Wl.t) params =
    let mem, entry = Workloads.Wl.instantiate w in
    let tr = Translator.Translate.create params mem in
    let page, _ = Translator.Translate.entry tr entry in
    Vec.iter (fun v -> Format.printf "%a@." Vliw.Tree.pp v) page.vliws
  in
  Cmd.v (Cmd.info "trees" ~doc) Term.(const run $ w $ params_term)

let experiments_cmd =
  let doc = "Regenerate the paper's tables and figures (all, or by id)." in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID") in
  let run = function
    | [] -> Stats.Experiments.all ()
    | ids ->
      List.iter
        (fun id ->
          match id with
          | "t5.1" -> Stats.Experiments.table_5_1 ()
          | "f5.1" -> Stats.Experiments.figure_5_1 ()
          | "t5.2" -> Stats.Experiments.table_5_2 ()
          | "t5.3" -> Stats.Experiments.table_5_3 ()
          | "t5.4" -> Stats.Experiments.table_5_4 ()
          | "f5.2" -> Stats.Experiments.figure_5_2 ()
          | "t5.5" -> Stats.Experiments.table_5_5 ()
          | "t5.6" -> Stats.Experiments.table_5_6 ()
          | "t5.7" -> Stats.Experiments.table_5_7 ()
          | "f5.3" -> Stats.Experiments.figure_5_3 ()
          | "f5.4" -> Stats.Experiments.figure_5_4 ()
          | "f5.5" -> Stats.Experiments.figure_5_5 ()
          | "t5.8" -> Stats.Experiments.table_5_8 ()
          | "t5.9" -> Stats.Experiments.table_5_9 ()
          | "oracle" -> Stats.Experiments.oracle ()
          | "ablations" -> Stats.Experiments.ablations ()
          | "s390" -> Stats.Experiments.s390_retarget ()
          | other -> Printf.eprintf "unknown experiment id %S\n" other)
        ids
  in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const run $ ids)

let ladder_cmd =
  let doc = "Print the parallelism ladder for a workload (Chapter 6)." in
  let w = Arg.(required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD") in
  let run (w : Workloads.Wl.t) =
    let inorder = Baseline.Inorder.run w in
    Printf.printf "%-36s %6.2f\n" "in-order base machine" inorder.ipc;
    let big = Vmm.Run.run w in
    Printf.printf "%-36s %6.2f\n" "DAISY 24-issue" big.ilp_inf;
    let trad = Vmm.Run.run ~params:(Baseline.Tradcomp.params w) w in
    Printf.printf "%-36s %6.2f\n" "traditional VLIW compiler" trad.ilp_inf;
    let oracle = Baseline.Oracle.run w in
    Printf.printf "%-36s %6.2f\n" "oracle" oracle.ilp
  in
  Cmd.v (Cmd.info "ladder" ~doc) Term.(const run $ w)

let tcache_cmd =
  let doc = "Inspect or clear a persistent translation cache directory." in
  (* a plain string, not [Arg.dir]: a missing or never-populated cache
     directory is an empty cache, not a usage error — every subcommand
     reports an empty summary and exits 0 *)
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  let stats_cmd =
    let doc = "Summarise the entries in a cache directory." in
    let run dir =
      let infos = Tcache.Store.list_dir dir in
      let ok, bad =
        List.partition
          (fun (i : Tcache.Store.info) -> i.status = `Ok)
          infos
      in
      let sum f = List.fold_left (fun acc i -> acc + f i) 0 ok in
      let configs =
        List.sort_uniq compare
          (List.map
             (fun (i : Tcache.Store.info) -> (i.frontend, i.fingerprint))
             ok)
      in
      Printf.printf "entries:       %d (%d corrupt)\n" (List.length infos)
        (List.length bad);
      (* pages and tier-2 region images are different beasts (a region
         is one superblock-scheduled image over several member pages),
         so the summary keeps their counts and footprints apart *)
      let pages, regions =
        List.partition (fun (i : Tcache.Store.info) -> i.kind = `Page) ok
      in
      let bytes_of l =
        List.fold_left
          (fun n (i : Tcache.Store.info) -> n + i.file_bytes)
          0 l
      in
      Printf.printf "  pages:       %d (%d bytes)\n" (List.length pages)
        (bytes_of pages);
      Printf.printf "  regions:     %d (%d bytes, %d member pages)\n"
        (List.length regions) (bytes_of regions)
        (List.fold_left
           (fun n (i : Tcache.Store.info) -> n + Array.length i.members)
           0 regions);
      Printf.printf "file bytes:    %d\n"
        (sum (fun (i : Tcache.Store.info) -> i.file_bytes));
      Printf.printf "tree VLIWs:    %d\n"
        (sum (fun (i : Tcache.Store.info) -> i.vliws));
      Printf.printf "entry points:  %d\n"
        (sum (fun (i : Tcache.Store.info) -> i.entries));
      Printf.printf "configurations:%d\n" (List.length configs);
      List.iter
        (fun (fe, fp) -> Printf.printf "  %s  %s\n" fe fp)
        configs;
      (* per-frontend entry counts: a shared directory serves several
         guest ISAs side by side, and the budget squeezes them all *)
      let frontends =
        List.sort_uniq compare
          (List.map (fun (i : Tcache.Store.info) -> i.frontend) ok)
      in
      List.iter
        (fun fe ->
          let mine =
            List.filter (fun (i : Tcache.Store.info) -> i.frontend = fe) ok
          in
          Printf.printf "  frontend %-6s %d entries, %d bytes\n" fe
            (List.length mine)
            (List.fold_left
               (fun n (i : Tcache.Store.info) -> n + i.file_bytes)
               0 mine))
        frontends;
      (* LRU ages (now - mtime; a probe hit refreshes mtime), so the
         operator can see what the eviction budget would take next *)
      if ok <> [] then begin
        let now = Unix.time () in
        let bounds =
          [ (60., "<1m"); (600., "<10m"); (3600., "<1h"); (86400., "<1d") ]
        in
        let counts = Array.make (List.length bounds + 1) 0 in
        List.iter
          (fun (i : Tcache.Store.info) ->
            let age = max 0. (now -. i.mtime) in
            let rec place k = function
              | (b, _) :: rest -> if age <= b then k else place (k + 1) rest
              | [] -> k
            in
            let k = place 0 bounds in
            counts.(k) <- counts.(k) + 1)
          ok;
        Printf.printf "LRU ages:      %s\n"
          (String.concat "  "
             (List.mapi
                (fun k (_, label) ->
                  Printf.sprintf "%s:%d" label counts.(k))
                bounds
             @ [ Printf.sprintf "older:%d" counts.(List.length bounds) ]))
      end;
      List.iter
        (fun (i : Tcache.Store.info) ->
          match i.status with
          | `Corrupt reason -> Printf.printf "corrupt: %s (%s)\n" i.key reason
          | `Skipped reason -> Printf.printf "skipped: %s (%s)\n" i.key reason
          | `Ok -> ())
        bad;
      (* the storage-health footer: torn entries, quarantine corpses
         and dead writers' temp files are exactly what `daisy fsck`
         walks — report the counts here instead of silently skipping,
         so an operator reading stats sees a sick tree immediately *)
      Printf.printf "degraded:      %d torn entries (run `daisy fsck` to repair)\n"
        (List.length bad);
      Printf.printf
        "quarantined:   %d (corrupt entries set aside as .dtc.bad)\n"
        (List.length (Tcache.Store.quarantined_files dir));
      Printf.printf
        "orphaned:      %d (temp files from dead writers, swept at open)\n"
        (List.length (Tcache.Store.orphan_files dir));
      Printf.printf "stray files:   %d (not cache entries, left alone)\n"
        (List.length (Tcache.Store.stray_files dir))
    in
    Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ dir)
  in
  let ls_cmd =
    let doc = "List every cache entry with its decoded header." in
    let run dir =
      List.iter
        (fun (i : Tcache.Store.info) ->
          match i.status with
          | `Ok ->
            let where =
              match i.kind with
              | `Page -> Printf.sprintf "base=0x%08x" i.base
              | `Region ->
                Printf.sprintf "region[%s]"
                  (String.concat ","
                     (List.map (Printf.sprintf "0x%x")
                        (Array.to_list i.members)))
            in
            Printf.printf
              "%s  %-4s %s psize=%-7d vliws=%-5d entries=%-4d %7dB%s\n"
              i.key i.frontend where i.psize i.vliws i.entries i.file_bytes
              (if i.spec_inhibited then "  spec-off" else "")
          | `Corrupt reason -> Printf.printf "%s  CORRUPT: %s\n" i.key reason
          | `Skipped reason -> Printf.printf "%s  SKIPPED: %s\n" i.key reason)
        (Tcache.Store.list_dir dir)
    in
    Cmd.v (Cmd.info "ls" ~doc) Term.(const run $ dir)
  in
  let clear_cmd =
    let doc = "Remove every cache entry (and stray temp file) in DIR." in
    let run dir =
      let removed, skipped = Tcache.Store.clear_dir dir in
      Printf.printf "removed %d files (%d skipped)\n" removed skipped
    in
    Cmd.v (Cmd.info "clear" ~doc) Term.(const run $ dir)
  in
  Cmd.group (Cmd.info "tcache" ~doc) [ stats_cmd; ls_cmd; clear_cmd ]

let fsck_cmd =
  let doc =
    "Walk the durable stores (tcache, profiles, checkpoints, crash \
     dumps), report torn entries and orphaned temp files, and \
     optionally repair them."
  in
  let dir_opt name docv doc =
    Arg.(value & opt (some string) None & info [ name ] ~docv ~doc)
  in
  let tc = dir_opt "tcache" "DIR" "Translation cache directory to check." in
  let pd = dir_opt "profile-dir" "DIR" "Profile store directory to check." in
  let ck = dir_opt "checkpoint-dir" "DIR" "Checkpoint directory to check." in
  let cd =
    dir_opt "crash-dump-dir" "DIR" "Flight-recorder dump directory to check."
  in
  let repair =
    Arg.(value & flag
         & info [ "repair" ]
             ~doc:
               "Set torn entries aside as .bad (bytes kept for the \
                post-mortem) and remove orphaned temp files.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json-out" ] ~docv:"PATH"
             ~doc:"Also write the report as JSON to $(docv).")
  in
  let run tc pd ck cd repair json_out =
    match (tc, pd, ck, cd) with
    | None, None, None, None ->
      prerr_endline
        "fsck: name at least one store (--tcache, --profile-dir, \
         --checkpoint-dir, --crash-dump-dir)";
      exit 2
    | _ ->
      let reports =
        Guard.Fsck.run ~repair ?tcache_dir:tc ?profile_dir:pd
          ?checkpoint_dir:ck ?crash_dir:cd ()
      in
      List.iter
        (fun r -> Format.printf "@[<v>%a@]@." Guard.Fsck.pp r)
        reports;
      (match json_out with
      | Some path ->
        let oc = open_out path in
        output_string oc (Obs.Json.to_string (Guard.Fsck.to_json reports));
        close_out oc
      | None -> ());
      if Guard.Fsck.all_clean reports then print_endline "fsck: clean"
      else begin
        Printf.printf "fsck: %d issues remain%s\n"
          (List.fold_left (fun n r -> n + Guard.Fsck.issues r) 0
             (List.filter (fun r -> not (Guard.Fsck.clean r)) reports))
          (if repair then "" else " (re-run with --repair)");
        exit 1
      end
  in
  Cmd.v (Cmd.info "fsck" ~doc)
    Term.(const run $ tc $ pd $ ck $ cd $ repair $ json_out)

let socket_arg =
  Arg.(value
       & opt string (Filename.concat (Filename.get_temp_dir_name ())
                       "daisy-serve.sock")
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket the daemon listens on.")

let serve_cmd =
  let doc =
    "Serve guest sessions as a multi-tenant daemon over one shared \
     translation cache.  Each session is a full differentially-verified \
     run with its own memory image and VMM; sessions execute \
     concurrently on a bounded pool of OCaml domains and share only the \
     cache directory, where a per-key translate gate coalesces \
     cold-cache storms and an optional byte budget casts out \
     least-recently-used entries (never pages pinned hot by a live \
     session).  Stop it with $(b,daisy client shutdown)."
  in
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  let domains =
    Arg.(value & opt int 4
         & info [ "domains" ] ~docv:"N"
             ~doc:"Size of the session domain pool (concurrent guests).")
  in
  let budget =
    Arg.(value & opt (some int) None
         & info [ "budget" ] ~docv:"BYTES"
             ~doc:"Entry-byte budget for the shared cache directory; \
                   exceeding it evicts least-recently-used unpinned \
                   entries as sessions finish.")
  in
  let checkpoint_root =
    Arg.(value & opt (some string) None
         & info [ "checkpoint-root" ] ~docv:"DIR"
             ~doc:"Give each session its own checkpoint directory \
                   $(docv)/session-<id>.")
  in
  let engine =
    Arg.(value
         & opt (enum [ ("tree", Vmm.Monitor.Tree); ("compiled", Vmm.Monitor.Compiled) ])
             Vmm.Monitor.Compiled
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"VLIW execution engine for every session.")
  in
  let queue_cap =
    Arg.(value & opt (some int) None
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:"Bound the pool's submit queue at $(docv) waiting \
                   sessions; past it the daemon sheds load with \
                   $(b,ERR busy <retry_after_ms>) instead of queueing \
                   without limit.")
  in
  let chaos_cocktail =
    Arg.(value & flag
         & info [ "chaos-cocktail" ]
             ~doc:"Attach the seeded fault-injection cocktail \
                   (translator crashes, bit-flips, cache poisoning, \
                   interrupts, fault storms) to every session.  For \
                   hardening runs: the daemon must absorb all of it.")
  in
  let chaos_seed =
    Arg.(value & opt int 0xDA15
         & info [ "chaos-seed" ] ~docv:"SEED"
             ~doc:"Base seed for --chaos-cocktail; each session derives \
                   its own injector seed from $(docv) and its id, so a \
                   fleet is reproducible.")
  in
  let chaos_storage =
    Arg.(value & flag
         & info [ "chaos-storage" ]
             ~doc:"Run every session's translation cache on a seeded \
                   disk-fault backend (ENOSPC, EIO, short writes, torn \
                   renames).  Sessions must degrade to in-memory \
                   overlays, never crash or mismatch; HEALTH reports \
                   storage_injected / tcache_degraded / storage_faults.")
  in
  let run dir socket_path domains budget checkpoint_root engine queue_cap
      chaos_cocktail chaos_seed chaos_storage params tier2 =
    if domains <= 0 then begin
      Printf.eprintf "daisy serve: --domains must be positive\n";
      exit 2
    end;
    (match queue_cap with
    | Some c when c < 0 ->
      Printf.eprintf "daisy serve: --queue-cap must be >= 0\n";
      exit 2
    | _ -> ());
    check_writable_dir "cache" dir;
    Option.iter (check_writable_dir "--checkpoint-root") checkpoint_root;
    let session_instrument =
      if not chaos_cocktail then None
      else
        Some
          (fun ~id vmm ->
            Fault.Inject.attach
              (Fault.Inject.create
                 { Fault.Inject.cocktail with
                   seed = chaos_seed + (id * 0x9E3779B9) })
              vmm)
    in
    Printf.printf "daisy serve: cache %s, %d domains, socket %s%s%s\n%!" dir
      domains socket_path
      (if chaos_cocktail then
         Printf.sprintf " (chaos cocktail, seed %#x)" chaos_seed
       else "")
      (if chaos_storage then
         Printf.sprintf " (storage faults, seed %#x)" chaos_seed
       else "");
    (* sessions already run on pool domains, so each session's tier-2
       compiles stay synchronous on its own domain *)
    let tier2 = tier2_config tier2 ~submit:None in
    let storage =
      if chaos_storage then
        Some { Fsio.storage_cocktail with seed = chaos_seed }
      else None
    in
    match
      Serve.Server.serve ~params ~engine ?budget ?checkpoint_root ~domains
        ?queue_cap ?session_instrument ?tier2 ?storage
        ~ignore_mem:
          (if chaos_cocktail then [ Workloads.Wl.interrupt_count_addr ]
           else [])
        ~socket_path ~dir ()
    with
    | sessions ->
      Printf.printf "daisy serve: shut down after %d sessions\n" sessions
    | exception Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "daisy serve: %s(%s): %s\n" fn arg (Unix.error_message e);
      exit 2
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ dir $ socket_arg $ domains $ budget $ checkpoint_root
          $ engine $ queue_cap $ chaos_cocktail $ chaos_seed $ chaos_storage
          $ params_term $ tier2_term)

let client_cmd =
  let doc =
    "Drive a running $(b,daisy serve) daemon.  COMMAND is one of \
     $(b,ping), $(b,run) $(i,WORKLOAD) [$(i,DEADLINE_MS)], $(b,fleet) \
     $(i,N) $(i,WORKLOAD..) [$(i,DEADLINE_MS)], $(b,stats), \
     $(b,health), $(b,shutdown).  Prints the daemon's JSON reply.  \
     Exit codes distinguish the failure planes: 0 on an OK reply, 3 on \
     a daemon-reported $(b,ERR) reply (deadline, mismatch, busy after \
     retries, ...), 4 when no daemon answers (connect refused, hung \
     up), 2 on a protocol violation or a malformed request."
  in
  let words =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"COMMAND")
  in
  let wait =
    Arg.(value & opt float 0.
         & info [ "wait-ready" ] ~docv:"SECONDS"
             ~doc:"Poll the daemon up to $(docv) before sending, for \
                   scripts that just forked it.")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry the request up to $(docv) extra times under \
                   jittered exponential backoff when the daemon sheds \
                   it ($(b,ERR busy), honoring the server's \
                   retry_after_ms hint) or is unreachable.")
  in
  let run socket_path wait retries words =
    let req =
      match words with
      | cmd :: rest ->
        String.concat " " (String.uppercase_ascii cmd :: rest)
      | [] -> assert false  (* non_empty *)
    in
    if retries < 0 then begin
      Printf.eprintf "daisy client: --retries must be >= 0\n";
      exit 2
    end;
    if wait > 0. && not (Serve.Client.wait_ready ~timeout:wait ~socket_path ())
    then begin
      Printf.eprintf "daisy client: daemon at %s not ready after %.1fs\n"
        socket_path wait;
      exit 4
    end;
    let send () =
      if retries = 0 then Serve.Client.request ~socket_path req
      else
        Serve.Client.request_retry
          ~policy:{ Serve.Retry.default with attempts = retries + 1 }
          ~socket_path req
    in
    match send () with
    | Serve.Client.Ok_json payload ->
      if payload <> "" then print_endline payload
    | Serve.Client.Err { cls; detail } ->
      Printf.eprintf "daisy client: ERR %s %s\n" cls detail;
      exit 3
    | exception Serve.Client.Unreachable msg ->
      Printf.eprintf "daisy client: %s\n" msg;
      exit 4
    | exception Serve.Client.Protocol msg ->
      Printf.eprintf "daisy client: %s\n" msg;
      exit 2
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(const run $ socket_arg $ wait $ retries $ words)

let fuzz_cmd =
  let doc =
    "Differentially fuzz the VMM against the reference interpreter: run \
     randomly generated (seeded, reproducible) pages on both and compare \
     final state, memory and console output bit-for-bit.  Mismatches are \
     shrunk to minimal reproducers on disk.  Combine with the --fault-* \
     flags to fuzz under fault injection."
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Corpus seed.")
  in
  let pages =
    Arg.(value & opt int 100
         & info [ "pages" ] ~docv:"N" ~doc:"Number of generated pages.")
  in
  let insns =
    Arg.(value & opt int 96
         & info [ "insns" ] ~docv:"N" ~doc:"Generated slots per page.")
  in
  let fuel =
    Arg.(value & opt int 100_000
         & info [ "fuel" ] ~docv:"N"
             ~doc:"Base-instruction budget per page (both sides out of fuel \
                   counts as a hang, not a failure).")
  in
  let out =
    Arg.(value & opt string "fuzz-failures"
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Directory for shrunk reproducer files.")
  in
  let replay =
    Arg.(value & opt (some file) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Re-run one reproducer file instead of generating a corpus.")
  in
  let shadow_sample =
    Arg.(value & opt float 0.
         & info [ "shadow-sample" ] ~docv:"RATE"
             ~doc:"Also shadow-verify this fraction of committed packets in \
                   every fuzzed VMM run (1.0 = every packet); caught \
                   divergences are repaired in place, so the verdicts are \
                   unchanged — the count is reported at the end.")
  in
  let no_flight =
    Arg.(value & flag
         & info [ "no-flight" ]
             ~doc:"Disable the flight recorder (no crash dumps on mismatch).")
  in
  let crash_dump_dir =
    Arg.(value & opt string "daisy-crash"
         & info [ "crash-dump-dir" ] ~docv:"DIR"
             ~doc:"Where the flight recorder writes one crash dump per \
                   mismatching page.")
  in
  let fault_storage =
    Arg.(value & flag
         & info [ "fault-storage" ]
             ~doc:"Also run every page against a persistent translation \
                   cache on a seeded disk-fault backend (ENOSPC, EIO, \
                   short writes, torn renames).  The verdicts must not \
                   change: a lying disk may cost retranslation, never \
                   correctness.")
  in
  let run seed pages insns fuel out replay shadow_sample no_flight
      crash_dump_dir fault_storage faults =
    let storage_dir =
      if not fault_storage then None
      else begin
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "daisy-fuzz-tcache-%d" (Unix.getpid ()))
        in
        Tcache.Store.mkdir_p dir;
        Some dir
      end
    in
    let storage =
      Option.map
        (fun dir -> (dir, { Fsio.storage_cocktail with seed }))
        storage_dir
    in
    let rec rm_rf path =
      match Sys.is_directory path with
      | true ->
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        (try Sys.rmdir path with Sys_error _ -> ())
      | false -> ( try Sys.remove path with Sys_error _ -> ())
      | exception Sys_error _ -> ()
    in
    let cleanup_storage () = Option.iter rm_rf storage_dir in
    let flight =
      if no_flight then None
      else Some (Obs.Flight.create ~dir:crash_dump_dir ())
    in
    let bridge =
      Option.map (fun flight -> Obs.Bridge.create ~flight ()) flight
    in
    let divergences = ref 0 in
    let attach_extra =
      match (bridge, shadow_sample > 0.) with
      | None, false -> None
      | _ ->
        Some
          (fun (vmm : Vmm.Monitor.t) ->
            (* bridge first (it overwrites the hook), then the shadow
               counter wrapper, which chains whatever is installed *)
            (match bridge with
            | Some b -> Obs.Bridge.attach b vmm
            | None -> ());
            if shadow_sample > 0. then begin
              ignore
                (Guard.Shadow.attach
                   { Guard.Shadow.default with sample = shadow_sample; seed }
                   vmm);
              let prev = vmm.event_hook in
              vmm.event_hook <-
                Some
                  (fun ev ->
                    (match ev with
                    | Vmm.Monitor.Shadow_divergence _ -> incr divergences
                    | _ -> ());
                    match prev with Some f -> f ev | None -> ())
            end)
    in
    let dump_crash reason =
      match flight with
      | Some f -> (
        match Obs.Flight.dump f ~reason with
        | Some path -> Printf.printf "crash dump: %s\n" path
        | None -> ())
      | None -> ()
    in
    let on_mismatch =
      Option.map
        (fun _ ~index ~message:(_ : string) ->
          dump_crash (Printf.sprintf "fuzz-%d" index))
        flight
    in
    let report_shadow () =
      if shadow_sample > 0. then
        Printf.printf "shadow: %d divergence(s) caught and repaired\n"
          !divergences
    in
    match replay with
    | Some path ->
      (match Fault.Fuzz.replay ?faults ?storage ?attach_extra path with
      | Match ->
        Printf.printf "%s: match\n" path;
        report_shadow ();
        cleanup_storage ()
      | Hang ->
        Printf.printf "%s: hang (both sides out of fuel)\n" path;
        report_shadow ();
        cleanup_storage ()
      | Mismatch m ->
        Printf.printf "%s: MISMATCH: %s\n" path m;
        dump_crash "replay";
        cleanup_storage ();
        exit 3)
    | None ->
      let s =
        Fault.Fuzz.fuzz ?faults ?storage ?attach_extra ?on_mismatch
          ~out_dir:out ~insns ~fuel ~log:print_endline ~seed ~pages ()
      in
      Printf.printf "fuzz: %d pages, %d matched, %d hung, %d mismatched\n"
        s.pages s.matched s.hung s.mismatched;
      if fault_storage then
        Printf.printf "storage: %d disk fault(s) injected, verdicts held\n"
          s.storage_injected;
      report_shadow ();
      cleanup_storage ();
      if s.mismatched > 0 then exit 3
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(const run $ seed $ pages $ insns $ fuel $ out $ replay
          $ shadow_sample $ no_flight $ crash_dump_dir $ fault_storage
          $ fault_term)

let () =
  let doc = "DAISY: dynamic binary translation onto a tree-VLIW machine" in
  let info = Cmd.info "daisy" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; resume_cmd; profile_cmd; trees_cmd;
            experiments_cmd; ladder_cmd; tcache_cmd; fsck_cmd; serve_cmd;
            client_cmd; fuzz_cmd ]))
