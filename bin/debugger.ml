(* A minimal interactive debugger for the DAISY VMM.

   Steps execution VLIW-by-VLIW (through the translated code, via the
   fuel mechanism and Monitor.resume_pc) or instruction-by-instruction
   (through the VMM's interpreter), printing the per-step delta of every
   Monitor statistic — a console view of what the telemetry layer
   records.

     usage: debugger [WORKLOAD]        (default: wc)

   Commands:
     s [N]      step N tree VLIWs (default 1) through translated code
     i [N]      interpret N base instructions (default 1)
     r          print architected registers
     x ADDR [N] dump N memory words at ADDR (hex accepted)
     st         print cumulative statistics
     c          run to completion
     l          list workloads
     w NAME     load workload NAME (resets the machine)
     q          quit *)

module Monitor = Vmm.Monitor

type session = {
  vmm : Monitor.t;
  mem : Ppc.Mem.t;
  name : string;
  mutable pc : int;
  mutable status : [ `Running | `Exited of int option ];
}

let load name =
  let w = Workloads.Registry.by_name name in
  let mem, entry = Workloads.Wl.instantiate w in
  let vmm = Monitor.create mem in
  Printf.printf "loaded %s, entry 0x%08x\n%!" w.name entry;
  { vmm; mem; name = w.name; pc = entry; status = `Running }

let snapshot (s : Monitor.stats) = { s with vliws = s.vliws }

let print_delta before (s : Monitor.stats) =
  let d name v0 v1 =
    if v1 <> v0 then Printf.printf "  %-24s +%d (now %d)\n" name (v1 - v0) v1
  in
  d "vliws" before.Monitor.vliws s.vliws;
  d "interp_insns" before.interp_insns s.interp_insns;
  d "interp_episodes" before.interp_episodes s.interp_episodes;
  d "rollbacks" before.rollbacks s.rollbacks;
  d "aliases" before.aliases s.aliases;
  d "cross_direct" before.cross_direct s.cross_direct;
  d "cross_lr" before.cross_lr s.cross_lr;
  d "cross_ctr" before.cross_ctr s.cross_ctr;
  d "cross_gpr" before.cross_gpr s.cross_gpr;
  d "onpage_jumps" before.onpage_jumps s.onpage_jumps;
  d "loads" before.loads s.loads;
  d "stores" before.stores s.stores;
  d "syscalls" before.syscalls s.syscalls;
  d "external_interrupts" before.external_interrupts s.external_interrupts;
  d "adaptive_retranslations" before.adaptive_retranslations
    s.adaptive_retranslations;
  d "code_invalidations" before.code_invalidations s.code_invalidations;
  d "stall_cycles" before.stall_cycles s.stall_cycles;
  d "itlb_misses" before.itlb_misses s.itlb_misses

let print_stats (s : Monitor.stats) =
  Printf.printf
    "vliws %d  interp_insns %d  episodes %d  rollbacks %d  aliases %d\n\
     cross direct/lr/ctr/gpr %d/%d/%d/%d  onpage %d  loads/stores %d/%d\n\
     syscalls %d  ext-irq %d  invalidations %d  itlb misses %d\n"
    s.Monitor.vliws s.interp_insns s.interp_episodes s.rollbacks s.aliases
    s.cross_direct s.cross_lr s.cross_ctr s.cross_gpr s.onpage_jumps s.loads
    s.stores s.syscalls s.external_interrupts s.code_invalidations
    s.itlb_misses

let print_regs s =
  let m = s.vmm.Monitor.st.m in
  Printf.printf "pc   0x%08x  lr  0x%08x  ctr 0x%08x  cr 0x%08x\n" s.pc m.lr
    m.ctr m.cr;
  Printf.printf "msr  0x%08x  xer ca=%b ov=%b so=%b\n" m.msr m.xer_ca m.xer_ov
    m.xer_so;
  for row = 0 to 7 do
    for col = 0 to 3 do
      let r = (row * 4) + col in
      Printf.printf "r%-2d 0x%08x  " r m.gpr.(r)
    done;
    print_newline ()
  done

let exited s code =
  s.status <- `Exited code;
  (match code with
  | Some c -> Printf.printf "program exited with code %d\n" c
  | None -> Printf.printf "program ran out of fuel\n")

(* Execute [n] tree VLIWs from the current pc.  Fuel semantics: the VMM
   spends one unit per VLIW *before* executing it and raises when the
   tank hits zero, so a budget of n+1 executes exactly n VLIWs and
   leaves [resume_pc] at the next precise boundary. *)
let step s n =
  match s.status with
  | `Exited _ -> Printf.printf "program has exited; use w to reload\n"
  | `Running -> (
    let before = snapshot s.vmm.stats in
    match Monitor.run s.vmm ~entry:s.pc ~fuel:(n + 1) with
    | Some _ as code -> exited s code
    | None ->
      s.pc <- s.vmm.resume_pc;
      Printf.printf "stopped at 0x%08x\n" s.pc;
      print_delta before s.vmm.stats)

(* Interpret [n] base instructions with the VMM's own interpreter. *)
let interp s n =
  match s.status with
  | `Exited _ -> Printf.printf "program has exited; use w to reload\n"
  | `Running -> (
    let m = s.vmm.st.m in
    Vliw.Vstate.clear_nonarch s.vmm.st;
    m.pc <- s.pc;
    try
      for _ = 1 to n do
        s.vmm.interp_step ();
        s.vmm.stats.interp_insns <- s.vmm.stats.interp_insns + 1
      done;
      s.pc <- m.pc;
      Printf.printf "stopped at 0x%08x\n" s.pc
    with Ppc.Mem.Halted code ->
      s.pc <- m.pc;
      exited s (Some code))

let continue_ s =
  match s.status with
  | `Exited _ -> Printf.printf "program has exited; use w to reload\n"
  | `Running ->
    let before = snapshot s.vmm.stats in
    let code = Monitor.run s.vmm ~entry:s.pc ~fuel:max_int in
    exited s code;
    print_delta before s.vmm.stats

let dump s addr n =
  for i = 0 to n - 1 do
    let a = addr + (4 * i) in
    match Ppc.Mem.load32 s.mem a with
    | v -> Printf.printf "0x%08x: 0x%08x\n" a v
    | exception _ -> Printf.printf "0x%08x: <fault>\n" a
  done

let int_arg default = function
  | [] -> Some default
  | [ a ] -> int_of_string_opt a
  | _ -> None

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "wc" in
  let s = ref (load name) in
  let quit = ref false in
  while not !quit do
    Printf.printf "(daisy-dbg %s @ 0x%08x) %!" !s.name !s.pc;
    match input_line stdin with
    | exception End_of_file -> quit := true
    | line -> (
      match
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun t -> t <> "")
      with
      | [] -> ()
      | cmd :: args -> (
        match (cmd, args) with
        | "q", _ | "quit", _ -> quit := true
        | "s", rest -> (
          match int_arg 1 rest with
          | Some n when n > 0 -> step !s n
          | _ -> Printf.printf "usage: s [N]\n")
        | "i", rest -> (
          match int_arg 1 rest with
          | Some n when n > 0 -> interp !s n
          | _ -> Printf.printf "usage: i [N]\n")
        | "r", _ -> print_regs !s
        | "st", _ -> print_stats !s.vmm.stats
        | "c", _ -> continue_ !s
        | "x", addr :: rest -> (
          match (int_of_string_opt addr, int_arg 4 rest) with
          | Some a, Some n when n > 0 -> dump !s a n
          | _ -> Printf.printf "usage: x ADDR [N]   (0x... accepted)\n")
        | "x", [] -> Printf.printf "usage: x ADDR [N]\n"
        | "l", _ ->
          List.iter
            (fun (w : Workloads.Wl.t) ->
              Printf.printf "  %-10s %s\n" w.name w.description)
            Workloads.Registry.all
        | "w", [ n ] -> (
          match load n with
          | s' -> s := s'
          | exception Invalid_argument msg -> Printf.printf "%s\n" msg)
        | "w", _ -> Printf.printf "usage: w NAME\n"
        | _ ->
          Printf.printf
            "commands: s [N] | i [N] | r | x ADDR [N] | st | c | l | w NAME \
             | q\n"))
  done
